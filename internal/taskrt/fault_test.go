package taskrt

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kdrsolvers/internal/fault"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/region"
)

func TestFaultRetryThenSucceed(t *testing.T) {
	rt := New()
	rt.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	rec := obs.NewRecorder()
	rt.SetRecorder(rec)

	var attempts atomic.Int64
	f := rt.Launch(TaskSpec{
		Name:      "flaky",
		Retryable: true,
		Run: func() float64 {
			if attempts.Add(1) < 3 {
				panic("transient")
			}
			return 11
		},
	})
	rt.Drain()
	if got := f.Value(); got != 11 {
		t.Fatalf("Value = %g, want 11 after retries", got)
	}
	if err := f.Err(); err != nil {
		t.Fatalf("Err = %v, want nil after recovery", err)
	}
	if err := rt.Err(); err != nil {
		t.Fatalf("runtime Err = %v, want nil (failure was recovered)", err)
	}
	st := rt.Stats()
	if st.Retries != 2 || st.Failed != 0 {
		t.Fatalf("Stats = %+v, want 2 retries and 0 permanent failures", st)
	}
	// Telemetry: two non-final panic records, and the span marked retried.
	fails := rec.Failures()
	if len(fails) != 2 {
		t.Fatalf("failure records = %d, want 2", len(fails))
	}
	for i, fr := range fails {
		if fr.Kind != obs.FailurePanic || fr.Final || fr.Attempt != i {
			t.Fatalf("failure record %d = %+v", i, fr)
		}
	}
	spans := rec.Spans()
	if len(spans) != 1 || spans[0].Outcome != obs.OutcomeRetried {
		t.Fatalf("spans = %+v, want one OutcomeRetried span", spans)
	}
}

func TestFaultRetryBudgetExhausted(t *testing.T) {
	rt := New()
	rt.SetRetryPolicy(RetryPolicy{MaxAttempts: 2})
	var attempts atomic.Int64
	f := rt.Launch(TaskSpec{
		Name:      "doomed",
		Retryable: true,
		Run:       func() float64 { attempts.Add(1); panic("persistent") },
	})
	rt.Drain()
	if attempts.Load() != 2 {
		t.Fatalf("attempts = %d, want exactly MaxAttempts", attempts.Load())
	}
	if !math.IsNaN(f.Value()) {
		t.Fatalf("Value = %g, want NaN", f.Value())
	}
	err := rt.Err()
	if err == nil || !strings.Contains(err.Error(), "after 2 attempt(s)") {
		t.Fatalf("Err = %v", err)
	}
	st := rt.Stats()
	if st.Failed != 1 || st.Retries != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestFaultNonRetryableFailsImmediately(t *testing.T) {
	rt := New()
	rt.SetRetryPolicy(RetryPolicy{MaxAttempts: 5})
	var attempts atomic.Int64
	rt.Launch(TaskSpec{
		Name: "rmw", // not Retryable: read-modify-write bodies must not re-run
		Run:  func() float64 { attempts.Add(1); panic("boom") },
	})
	rt.Drain()
	if attempts.Load() != 1 {
		t.Fatalf("non-retryable task ran %d times, want 1", attempts.Load())
	}
	if rt.Stats().Retries != 0 {
		t.Fatal("non-retryable task consumed retries")
	}
}

func TestFaultPoisonPropagationDiamond(t *testing.T) {
	// A → {B, C} → D. A fails permanently; B, C, D must be cancelled
	// without their bodies ever executing, and all must resolve with
	// ErrPoisoned naming A.
	rt := New()
	rec := obs.NewRecorder()
	rt.SetRecorder(rec)
	r := region.New("v", index.NewSpace("D", 8), "x")
	var ran atomic.Int64
	body := func() float64 { ran.Add(1); return 1 }

	rt.Launch(TaskSpec{
		Name: "A",
		Refs: []region.Ref{ref(r, "x", 0, 7, region.WriteDiscard)},
		Run:  func() float64 { panic("root cause") },
	})
	b := rt.Launch(TaskSpec{
		Name: "B",
		Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadWrite)},
		Run:  body,
	})
	c := rt.Launch(TaskSpec{
		Name: "C",
		Refs: []region.Ref{ref(r, "x", 4, 7, region.ReadWrite)},
		Run:  body,
	})
	d := rt.Launch(TaskSpec{
		Name: "D",
		Refs: []region.Ref{ref(r, "x", 0, 7, region.ReadOnly)},
		Run:  body,
	})
	rt.Drain()

	if ran.Load() != 0 {
		t.Fatalf("%d poisoned bodies executed, want 0", ran.Load())
	}
	for name, f := range map[string]*Future{"B": b, "C": c, "D": d} {
		if !math.IsNaN(f.Value()) {
			t.Fatalf("%s Value = %g, want NaN", name, f.Value())
		}
		err := f.Err()
		if !errors.Is(err, ErrPoisoned) {
			t.Fatalf("%s Err = %v, want ErrPoisoned", name, err)
		}
		if !strings.Contains(err.Error(), "root cause") {
			t.Fatalf("%s poison error %v does not name the root failure", name, err)
		}
	}
	st := rt.Stats()
	if st.Failed != 1 || st.Poisoned != 3 {
		t.Fatalf("Stats = %+v, want 1 failed and 3 poisoned", st)
	}
	// Err reports the root failure once, not once per cancelled successor.
	if err := rt.Err(); err == nil || strings.Count(err.Error(), "root cause") != 1 {
		t.Fatalf("Err = %v", err)
	}
	// Poisoned tasks record zero-duration spans with the poisoned outcome.
	var poisonedSpans int
	for _, s := range rec.Spans() {
		if s.Outcome == obs.OutcomePoisoned {
			poisonedSpans++
			if s.Start != s.End || s.Worker != -1 {
				t.Fatalf("poisoned span = %+v, want zero duration off-worker", s)
			}
		}
	}
	if poisonedSpans != 3 {
		t.Fatalf("poisoned spans = %d, want 3", poisonedSpans)
	}
}

func TestFaultPoisonClearedByRecovery(t *testing.T) {
	// A retryable task that recovers must NOT poison its successors.
	rt := New()
	rt.SetRetryPolicy(RetryPolicy{MaxAttempts: 2})
	r := region.New("v", index.NewSpace("D", 4), "x")
	data := r.Field("x")
	var first atomic.Bool
	rt.Launch(TaskSpec{
		Name:      "flaky-writer",
		Retryable: true,
		Refs:      []region.Ref{ref(r, "x", 0, 3, region.WriteDiscard)},
		Run: func() float64 {
			if first.CompareAndSwap(false, true) {
				panic("transient")
			}
			for i := range data {
				data[i] = 2
			}
			return 0
		},
	})
	sum := rt.Launch(TaskSpec{
		Name: "reader",
		Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadOnly)},
		Run: func() float64 {
			var s float64
			for _, v := range data {
				s += v
			}
			return s
		},
	})
	rt.Drain()
	if got := sum.Value(); got != 8 {
		t.Fatalf("reader = %g, want 8 (recovered writer's data)", got)
	}
	if err := sum.Err(); err != nil {
		t.Fatalf("reader Err = %v", err)
	}
	if rt.Stats().Poisoned != 0 {
		t.Fatal("recovery must not poison successors")
	}
}

func TestFaultErrAggregatesDistinctFailures(t *testing.T) {
	// Independent failures (disjoint regions, no poisoning between them)
	// must all surface through the joined Err.
	rt := New()
	r := region.New("v", index.NewSpace("D", 30), "x")
	for i := 0; i < 3; i++ {
		msg := "independent-" + string(rune('a'+i))
		lo := int64(i * 10)
		rt.Launch(TaskSpec{
			Name: "f",
			Refs: []region.Ref{ref(r, "x", lo, lo+9, region.ReadWrite)},
			Run:  func() float64 { panic(msg) },
		})
	}
	rt.Drain()
	err := rt.Err()
	if err == nil {
		t.Fatal("Err = nil")
	}
	for _, want := range []string{"independent-a", "independent-b", "independent-c"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("Err %v is missing %q", err, want)
		}
	}
	if rt.Stats().Failed != 3 {
		t.Fatalf("Failed = %d", rt.Stats().Failed)
	}
}

func TestFaultInjectorDeterministicThroughRuntime(t *testing.T) {
	// Same seed, same single-threaded launch order ⇒ the same tasks fail.
	run := func() []bool {
		rt := New()
		rt.SetFaultInjector(fault.NewInjector(fault.Plan{Seed: 5, PanicRate: 0.3}))
		r := region.New("v", index.NewSpace("D", 4), "x")
		var futs []*Future
		for i := 0; i < 40; i++ {
			futs = append(futs, rt.Launch(TaskSpec{
				Name: "t",
				Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadWrite)},
				Run:  func() float64 { return 1 },
			}))
		}
		rt.Drain()
		out := make([]bool, len(futs))
		for i, f := range futs {
			out[i] = f.Err() != nil // failed or poisoned
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule diverged at task %d", i)
		}
	}
	var failures int
	for _, bad := range a {
		if bad {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("PanicRate 0.3 over 40 tasks injected nothing")
	}
}

func TestFaultInjectedNaNIsSilent(t *testing.T) {
	rt := New()
	rt.SetFaultInjector(fault.NewInjector(fault.Plan{Seed: 1, NaNRate: 1}))
	var ran atomic.Bool
	f := rt.Launch(TaskSpec{Name: "t", Run: func() float64 { ran.Store(true); return 4 }})
	rt.Drain()
	if !ran.Load() {
		t.Fatal("NaN corruption must still run the body")
	}
	if !math.IsNaN(f.Value()) {
		t.Fatalf("Value = %g, want corrupted NaN", f.Value())
	}
	if f.Err() != nil || rt.Err() != nil {
		t.Fatal("silent corruption must not raise an error")
	}
}

func TestFaultInjectedPanicRecoversViaRetry(t *testing.T) {
	// Non-sticky injected panics fire only on attempt 0, so a retryable
	// task recovers on its first retry.
	rt := New()
	rt.SetFaultInjector(fault.NewInjector(fault.Plan{Seed: 1, PanicRate: 1}))
	rt.SetRetryPolicy(RetryPolicy{MaxAttempts: 2})
	f := rt.Launch(TaskSpec{Name: "t", Retryable: true, Run: func() float64 { return 6 }})
	rt.Drain()
	if got := f.Value(); got != 6 {
		t.Fatalf("Value = %g, want 6 after clean retry", got)
	}
	if rt.Stats().Retries != 1 {
		t.Fatalf("Retries = %d, want 1", rt.Stats().Retries)
	}
}

func TestFaultStickyPanicDefeatsRetry(t *testing.T) {
	rt := New()
	rt.SetFaultInjector(fault.NewInjector(fault.Plan{Seed: 1, PanicRate: 1, Sticky: true}))
	rt.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	f := rt.Launch(TaskSpec{Name: "t", Retryable: true, Run: func() float64 { return 6 }})
	rt.Drain()
	if !math.IsNaN(f.Value()) {
		t.Fatal("sticky fault must re-fire on every attempt")
	}
	if rt.Stats().Failed != 1 {
		t.Fatalf("Failed = %d", rt.Stats().Failed)
	}
}

func TestFaultWatchdogFlagsStraggler(t *testing.T) {
	rt := New()
	rec := obs.NewRecorder()
	rt.SetRecorder(rec)
	rt.SetWatchdog(5 * time.Millisecond)
	f := rt.Launch(TaskSpec{
		Name: "slow",
		Run: func() float64 {
			time.Sleep(60 * time.Millisecond)
			return 9
		},
	})
	rt.Launch(TaskSpec{Name: "fast", Run: func() float64 { return 1 }})
	rt.Drain()
	if f.Value() != 9 {
		t.Fatal("straggler must still complete")
	}
	if got := rt.Stats().Stragglers; got != 1 {
		t.Fatalf("Stragglers = %d, want 1", got)
	}
	var flagged int
	for _, fr := range rec.Failures() {
		if fr.Kind == obs.FailureStraggler {
			flagged++
			if fr.Name != "slow" {
				t.Fatalf("flagged %q, want slow", fr.Name)
			}
		}
	}
	if flagged != 1 {
		t.Fatalf("straggler records = %d, want 1", flagged)
	}
	if err := rt.Err(); err != nil {
		t.Fatalf("straggler flag must not be an error: %v", err)
	}
}

func TestFaultInjectedStallTriggersWatchdog(t *testing.T) {
	rt := New()
	rt.SetWatchdog(5 * time.Millisecond)
	rt.SetFaultInjector(fault.NewInjector(fault.Plan{
		Seed: 1, StallRate: 1, StallFor: 40 * time.Millisecond,
	}))
	f := rt.Launch(TaskSpec{Name: "t", Run: func() float64 { return 2 }})
	rt.Drain()
	if f.Value() != 2 {
		t.Fatal("stalled task must still produce its value")
	}
	if rt.Stats().Stragglers == 0 {
		t.Fatal("injected stall past the budget was not flagged")
	}
}
