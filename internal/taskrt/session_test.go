package taskrt

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/region"
)

// A failing task in one session must not surface in another session's
// Err, and the runtime-level Err must still see everything.
func TestSessionErrorScoping(t *testing.T) {
	rt := New()
	bad := rt.NewSession("bad")
	good := rt.NewSession("good")

	ra := region.New("a", index.NewSpace("D", 4), "x")
	rb := region.New("b", index.NewSpace("D", 4), "x")
	bad.Launch(TaskSpec{
		Name: "boom",
		Refs: []region.Ref{ref(ra, "x", 0, 3, region.ReadWrite)},
		Run:  func() float64 { panic("scoped failure") },
	})
	good.Launch(TaskSpec{
		Name: "fine",
		Refs: []region.Ref{ref(rb, "x", 0, 3, region.ReadWrite)},
		Run:  func() float64 { return 1 },
	})
	rt.Drain()

	if err := good.Err(); err != nil {
		t.Fatalf("clean session polluted by neighbor: %v", err)
	}
	if err := bad.Err(); err == nil || !strings.Contains(err.Error(), "scoped failure") {
		t.Fatalf("faulted session Err = %v", err)
	}
	if err := rt.Err(); err == nil {
		t.Fatal("runtime Err must join all sessions")
	}
	if st := good.Stats(); st.Failed != 0 || st.Launched != 1 {
		t.Fatalf("good session stats = %+v", st)
	}
	if st := bad.Stats(); st.Failed != 1 {
		t.Fatalf("bad session stats = %+v", st)
	}
}

// Poison must stay inside the failing session: its own successors are
// cancelled, a stranger session's tasks on different regions run.
func TestSessionPoisonContainment(t *testing.T) {
	rt := New()
	bad := rt.NewSession("bad")
	good := rt.NewSession("good")

	ra := region.New("a", index.NewSpace("D", 4), "x")
	rb := region.New("b", index.NewSpace("D", 4), "x")
	bad.Launch(TaskSpec{
		Name: "boom",
		Refs: []region.Ref{ref(ra, "x", 0, 3, region.WriteDiscard)},
		Run:  func() float64 { panic("die") },
	})
	fBad := bad.Launch(TaskSpec{
		Name: "downstream",
		Refs: []region.Ref{ref(ra, "x", 0, 3, region.ReadOnly)},
		Run:  func() float64 { return 7 },
	})
	ran := false
	good.Launch(TaskSpec{
		Name: "stranger",
		Refs: []region.Ref{ref(rb, "x", 0, 3, region.ReadWrite)},
		Run:  func() float64 { ran = true; return 0 },
	})
	rt.Drain()

	if fBad.Err() == nil {
		t.Fatal("successor of failed task must be poisoned")
	}
	if !ran {
		t.Fatal("stranger session's task must still run")
	}
	if st := bad.Stats(); st.Poisoned != 1 {
		t.Fatalf("bad session Poisoned = %d, want 1", st.Poisoned)
	}
	if st := good.Stats(); st.Poisoned != 0 || st.Failed != 0 {
		t.Fatalf("good session stats = %+v", st)
	}
}

// The poison ledger clears at *session* quiescence: a long-lived
// neighbor keeping the runtime busy must not keep a finished session's
// ledger pinned (the regression the shared server exposed — the global
// runtime is effectively never idle).
func TestSessionLedgerClearsAtSessionQuiescence(t *testing.T) {
	// The worker pool is sized by GOMAXPROCS at New(); this test blocks
	// one task mid-flight while another must run, so it needs two
	// workers even on a single-CPU box.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rt := New()
	bad := rt.NewSession("bad")
	busy := rt.NewSession("busy")

	ra := region.New("a", index.NewSpace("D", 4), "x")
	rb := region.New("b", index.NewSpace("D", 4), "x")

	// Keep the neighbor in flight while the failing session quiesces.
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	busy.Launch(TaskSpec{
		Name: "long",
		Refs: []region.Ref{ref(rb, "x", 0, 3, region.ReadWrite)},
		Run: func() float64 {
			once.Do(func() { close(started) })
			<-release
			return 0
		},
	})
	<-started

	bad.Launch(TaskSpec{
		Name: "boom",
		Refs: []region.Ref{ref(ra, "x", 0, 3, region.ReadWrite)},
		Run:  func() float64 { panic("die") },
	})
	bad.Drain() // session quiescent; runtime is not (busy still running)

	rt.mu.Lock()
	ledger := len(bad.failed)
	rt.mu.Unlock()
	if ledger != 0 {
		t.Fatalf("quiescent session still holds %d ledger entries while a neighbor runs", ledger)
	}

	close(release)
	rt.Drain()
}

// The per-session error window is bounded: sustained failures keep the
// most recent maxSessionErrs and count the evictions.
func TestSessionErrorWindowBounded(t *testing.T) {
	rt := New()
	s := rt.NewSession("chaos")
	r := region.New("v", index.NewSpace("D", 4), "x")
	const n = maxSessionErrs + 17
	for i := 0; i < n; i++ {
		s.Launch(TaskSpec{
			Name: fmt.Sprintf("boom%d", i),
			Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadWrite)},
			Run:  func() float64 { panic("die") },
		})
		s.Drain() // quiesce so each failure is a fresh root, not poison
	}
	rt.Drain()

	st := s.Stats()
	if st.Failed != n {
		t.Fatalf("Failed = %d, want %d", st.Failed, n)
	}
	if st.ErrsDropped != n-maxSessionErrs {
		t.Fatalf("ErrsDropped = %d, want %d", st.ErrsDropped, n-maxSessionErrs)
	}
	rt.mu.Lock()
	window := len(s.errs)
	rt.mu.Unlock()
	if window != maxSessionErrs {
		t.Fatalf("error window holds %d, want %d", window, maxSessionErrs)
	}
	// The oldest failures were evicted; the newest survive.
	err := s.Err()
	if strings.Contains(err.Error(), "boom0 ") {
		t.Fatal("oldest failure should have been evicted")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("boom%d", n-1)) {
		t.Fatal("newest failure missing from window")
	}
}

// ClearErrs empties one session's window without touching neighbors,
// and a closed session stops contributing to the runtime Err.
func TestSessionClearAndClose(t *testing.T) {
	rt := New()
	s1 := rt.NewSession("one")
	s2 := rt.NewSession("two")
	r1 := region.New("a", index.NewSpace("D", 4), "x")
	r2 := region.New("b", index.NewSpace("D", 4), "x")
	for _, sr := range []struct {
		s *Session
		r *region.Region
	}{{s1, r1}, {s2, r2}} {
		sr.s.Launch(TaskSpec{
			Name: "boom",
			Refs: []region.Ref{ref(sr.r, "x", 0, 3, region.ReadWrite)},
			Run:  func() float64 { panic("die") },
		})
	}
	rt.Drain()

	if n := s1.ClearErrs(); n != 1 {
		t.Fatalf("ClearErrs = %d, want 1", n)
	}
	if s1.Err() != nil {
		t.Fatal("cleared session still reports errors")
	}
	if s2.Err() == nil {
		t.Fatal("neighbor's errors were cleared too")
	}
	if rt.Err() == nil {
		t.Fatal("runtime Err must still see session two")
	}
	s2.Close()
	if rt.Err() != nil {
		t.Fatalf("closed session still pollutes runtime Err: %v", rt.Err())
	}
	if rt.Sessions() != 2 { // default + "one"; "two" unregistered
		t.Fatalf("Sessions = %d, want 2 after close", rt.Sessions())
	}
}

// Phase labels carry the session prefix, keeping concurrent tenants
// attributable in spans and graph nodes.
func TestSessionPhasePrefix(t *testing.T) {
	rt := New()
	s := rt.NewSession("tenant7")
	s.SetPhase("cg.step")
	r := region.New("v", index.NewSpace("D", 4), "x")
	s.Launch(TaskSpec{
		Name: "work",
		Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadWrite)},
		Run:  func() float64 { return 0 },
	})
	rt.Drain()
	g := rt.Graph()
	if got := g.Nodes[0].Phase; got != "tenant7/cg.step" {
		t.Fatalf("phase = %q, want tenant7/cg.step", got)
	}
}

// Retry policy is session state: a retrying tenant must not grant its
// neighbor's failing tasks extra attempts.
func TestSessionRetryScoping(t *testing.T) {
	rt := New()
	retrying := rt.NewSession("retrying")
	plain := rt.NewSession("plain")
	retrying.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})

	ra := region.New("a", index.NewSpace("D", 4), "x")
	rb := region.New("b", index.NewSpace("D", 4), "x")
	attempts := 0
	f := retrying.Launch(TaskSpec{
		Name:      "flaky",
		Retryable: true,
		Refs:      []region.Ref{ref(ra, "x", 0, 3, region.ReadWrite)},
		Run: func() float64 {
			attempts++
			if attempts < 3 {
				panic("transient")
			}
			return 9
		},
	})
	plainAttempts := 0
	plain.Launch(TaskSpec{
		Name:      "flaky",
		Retryable: true,
		Refs:      []region.Ref{ref(rb, "x", 0, 3, region.ReadWrite)},
		Run: func() float64 {
			plainAttempts++
			panic("always")
		},
	})
	rt.Drain()

	if got := f.Value(); got != 9 {
		t.Fatalf("retrying session's task = %g, want 9", got)
	}
	if plainAttempts != 1 {
		t.Fatalf("plain session's task ran %d times; retry policy leaked across sessions", plainAttempts)
	}
	if retrying.Err() != nil {
		t.Fatalf("recovered session Err = %v", retrying.Err())
	}
	if plain.Err() == nil {
		t.Fatal("plain session's permanent failure lost")
	}
}
