package taskrt

// Real trace memoization (paper Section 4.1, Legion's dynamic tracing).
//
// A trace scope (BeginTrace/EndTrace) brackets one instance of a launch
// sequence the caller believes repeats — one solver iteration, one GMRES
// restart cycle. The runtime memoizes the dependence analysis of the
// sequence and, once it has proven the sequence really does repeat,
// replays the memoized edges instead of re-running the interval-set
// interference analysis:
//
//	instance 1 (record):    full analysis; fingerprint every launch
//	                        (name + region-class refs).
//	instance 2 (calibrate): full analysis; validate each launch against
//	                        the fingerprint and capture its dependence
//	                        edges as trace-relative offsets.
//	instance 3+ (replay):   validate each launch, splice the memoized
//	                        edges in directly — zero analysis scans.
//
// Two executions are needed before replay because the edges of the
// first instance point at whatever preceded the trace (initialization
// code), not at a previous instance of itself; only from the second
// instance onward do the edges take their steady-state, offset-stable
// shape.
//
// Regions in a fingerprint are classified rather than matched by ID,
// because solver iterations create fresh scratch regions (dot-product
// partials, deferred scalars) on every instance:
//
//	rcStable: a long-lived region (solution, workspace vectors) that
//	          must reappear with the same ID.
//	rcCur:    the j-th region created during the instance itself
//	          (ID above the BeginTrace watermark), in first-appearance
//	          order.
//	rcPrev:   the j-th region created during the *previous* instance —
//	          how a CG step reads the r·r scalar produced one iteration
//	          earlier.
//
// Captured edges come in three classes: internal (offset into the
// current instance), prev (offset into the immediately preceding
// instance), and ancient (an absolute task ID from before the trace —
// fixed forever, because a history entry that survives one complete
// instance unchanged survives every later identical instance: the
// writer-shadowing subtraction is idempotent).
//
// Replay validity is strictly local: an instance may replay only when
// the immediately preceding instance of the same key completed, matched
// the template end to end, and no foreign task was launched in between
// (gapless adjacency, checked with the global task-ID counter). Any
// gap — a convergence-check residual recomputation, a checkpoint, a
// different trace key — silently demotes the next instance to full
// analysis, and any fingerprint mismatch mid-instance falls back to
// analysis for the rest of the instance and invalidates the template.
// Correctness therefore never depends on the caller scoping traces
// correctly; a wrong scope only costs performance.
//
// Replayed launches still append their accesses to the dependence
// history (and apply the writer-shadowing shrink), so the history stays
// exact at every task boundary: a mid-instance fallback or a foreign
// launch right after a replayed instance sees precisely the history a
// fully analyzed execution would have produced. What replay skips is
// the expensive part — conflict scans, interval intersections, byte
// accounting — which is what Stats.AnalysisScans counts.

import (
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/region"
)

// Region classes in a fingerprint.
const (
	rcStable = iota // long-lived region, matched by exact ID
	rcCur           // j-th region created during the current instance
	rcPrev          // j-th region created during the previous instance
)

// refTmpl is the fingerprint of one region reference.
type refTmpl struct {
	class  int
	region region.ID // rcStable: the exact ID
	idx    int       // rcCur/rcPrev: first-appearance index
	field  string
	subset index.IntervalSet
	priv   region.Privilege
}

// Dependence-edge classes in a template.
const (
	depInternal = iota // edge within the instance
	depPrev            // edge into the previous instance
	depAncient         // edge to a fixed pre-trace task
)

// depTmpl is one memoized dependence edge.
type depTmpl struct {
	kind  int
	off   int   // depInternal/depPrev: offset within the instance
	abs   int64 // depAncient: absolute task ID
	bytes int64
}

// taskTmpl is the per-task template: the fingerprint a replayed launch
// must match and (once calibrated) the edges to splice.
type taskTmpl struct {
	name string
	host bool
	refs []refTmpl
	deps []depTmpl
}

// traceTmpl is the memoized state of one trace key.
type traceTmpl struct {
	tasks   []taskTmpl
	hasDeps bool // true once an instance calibrated every task's edges

	// Bookkeeping about the most recent completed instance, consulted by
	// the next BeginTrace to decide adjacency.
	lastOK    bool // it matched the fingerprint end to end
	lastBase  int64
	lastLen   int
	lastFresh []region.ID // its fresh regions, first-appearance order

	// freshBufs double-buffers the fresh-region storage so steady-state
	// replay allocates nothing: lastFresh aliases the buffer the previous
	// instance filled, and the next instance appends into the other one.
	// An instance's lastFresh is consumed (copied into prevIdx) at the
	// following BeginTrace, so two buffers always suffice.
	freshBufs [2][]region.ID
	flip      int
}

// Trace modes of an active instance.
const (
	trRecord    = iota // full analysis; (re)build the fingerprint
	trCalibrate        // full analysis; validate and capture edges
	trReplay           // validate and splice memoized edges
)

// activeTrace is the state of the instance currently between BeginTrace
// and EndTrace, guarded by rt.mu. The runtime keeps a single recycled
// activeTrace (at most one instance is open at a time) so a trace scope
// itself costs no allocation on the replay path; its maps are cleared,
// not rebuilt, between instances.
type activeTrace struct {
	key  string
	tmpl *traceTmpl
	mode int

	base      int64     // ID of the instance's first task
	n         int       // tasks launched so far in this instance
	watermark region.ID // region-ID watermark at BeginTrace

	fresh    []region.ID       // fresh regions, first-appearance order
	freshIdx map[region.ID]int // inverse of fresh
	prevIdx  map[region.ID]int // previous instance's fresh regions

	cand   []taskTmpl // fingerprint being rebuilt (record/calibrate)
	failed bool       // a mismatch demoted the rest of the instance
}

// freshClass returns the class of a region reference within the active
// instance, assigning first-appearance indices to newly created regions.
func (at *activeTrace) classify(id region.ID) (class, idx int) {
	if id > at.watermark {
		j, ok := at.freshIdx[id]
		if !ok {
			if at.freshIdx == nil {
				at.freshIdx = make(map[region.ID]int, 8)
			}
			j = len(at.fresh)
			at.fresh = append(at.fresh, id)
			at.freshIdx[id] = j
		}
		return rcCur, j
	}
	if j, ok := at.prevIdx[id]; ok {
		return rcPrev, j
	}
	return rcStable, 0
}

// fingerprint builds the refTmpl list for a launch under the active
// instance's region classification.
func (at *activeTrace) fingerprint(spec TaskSpec) taskTmpl {
	t := taskTmpl{name: spec.Name, host: spec.Host}
	for _, ref := range spec.Refs {
		class, idx := at.classify(ref.Region)
		rt := refTmpl{
			class: class, field: ref.Field,
			subset: ref.Subset, priv: ref.Priv,
		}
		if class == rcStable {
			rt.region = ref.Region
		} else {
			rt.idx = idx
		}
		t.refs = append(t.refs, rt)
	}
	return t
}

// refsCompatible reports whether a freshly observed fingerprint matches
// a template task.
//
// One divergence is tolerated while calibrating (never while replaying):
// a template ref recorded as rcStable may be observed as rcPrev. The
// recording instance saw a scratch region created by pre-trace code
// (e.g. CG's initial r·r scalar, made during solver setup), which in
// steady state is a fresh region of the previous instance. Accepting the
// upgrade is safe in calibrate mode because the edges being captured
// come from this instance's real analysis, and the candidate — which
// records the ref as rcPrev — replaces the template; replay instances
// then validate strictly against rcPrev. In replay mode a calibrated
// template's rcStable refs name genuinely durable regions, so observing
// rcPrev there is a real structural change and must fall back.
func (at *activeTrace) refsCompatible(tref refTmpl, cref refTmpl) bool {
	tclass, tidx := tref.class, tref.idx
	if tclass != cref.class || tref.field != cref.field || tref.priv != cref.priv {
		if tclass == rcStable && cref.class == rcPrev && at.mode != trReplay &&
			tref.field == cref.field && tref.priv == cref.priv {
			return tref.subset.Equal(cref.subset)
		}
		return false
	}
	if tclass == rcStable && tref.region != cref.region {
		return false
	}
	if tclass != rcStable && tidx != cref.idx {
		return false
	}
	return tref.subset.Equal(cref.subset)
}

// taskCompatible checks a whole launch fingerprint against a template
// task.
func (at *activeTrace) taskCompatible(t taskTmpl, c taskTmpl) bool {
	if t.name != c.name || t.host != c.host || len(t.refs) != len(c.refs) {
		return false
	}
	for i := range t.refs {
		if !at.refsCompatible(t.refs[i], c.refs[i]) {
			return false
		}
	}
	return true
}

// captureDeps converts an analyzed launch's absolute edges into
// trace-relative template edges. Called only in calibrate mode, where
// the previous adjacent instance matched the template, so any edge at
// or above prevBase is offset-stable.
func captureDeps(deps []int64, bytes []int64, base, prevBase int64) []depTmpl {
	out := make([]depTmpl, len(deps))
	for i, d := range deps {
		switch {
		case d >= base:
			out[i] = depTmpl{kind: depInternal, off: int(d - base), bytes: bytes[i]}
		case d >= prevBase:
			out[i] = depTmpl{kind: depPrev, off: int(d - prevBase), bytes: bytes[i]}
		default:
			out[i] = depTmpl{kind: depAncient, abs: d, bytes: bytes[i]}
		}
	}
	return out
}

// replayCompatible validates one launch directly against a template task
// without materializing a candidate fingerprint — the replay-path
// equivalent of fingerprint+taskCompatible, minus their allocations.
// Replay validation is strict (no stable→prev upgrade), so a field-level
// comparison against the raw spec suffices. Classification side effects
// (first-appearance registration of fresh regions) are identical to the
// fingerprint path for every ref up to the first mismatch; after a
// mismatch the instance is demoted to analysis, so partial registration
// cannot corrupt a later replay.
func (at *activeTrace) replayCompatible(t *taskTmpl, spec TaskSpec) bool {
	if t.name != spec.Name || t.host != spec.Host || len(t.refs) != len(spec.Refs) {
		return false
	}
	for i := range t.refs {
		tref := &t.refs[i]
		ref := &spec.Refs[i]
		if tref.field != ref.Field || tref.priv != ref.Priv {
			return false
		}
		class, idx := at.classify(ref.Region)
		if class != tref.class {
			return false
		}
		if class == rcStable {
			if tref.region != ref.Region {
				return false
			}
		} else if idx != tref.idx {
			return false
		}
		if !tref.subset.Equal(ref.Subset) {
			return false
		}
	}
	return true
}

// spliceDepsInto materializes a template's edges at a concrete instance
// base, appending into caller-owned buffers (passed in truncated, handed
// back possibly regrown — the zero-allocation contract of the replay
// path). The previous instance occupies [base-instLen, base). Template
// edges were captured in ascending absolute order, and the mapping
// preserves it (ancient < prev < internal at both capture and splice),
// so the result is already sorted.
func spliceDepsInto(tmpl []depTmpl, base int64, instLen int, deps, bytes []int64) ([]int64, []int64) {
	for _, d := range tmpl {
		switch d.kind {
		case depInternal:
			deps = append(deps, base+int64(d.off))
		case depPrev:
			deps = append(deps, base-int64(instLen)+int64(d.off))
		default:
			deps = append(deps, d.abs)
		}
		bytes = append(bytes, d.bytes)
	}
	return deps, bytes
}

// traceObserve classifies one launch under the session's active trace
// and decides whether it can be spliced. On a successful replay match it
// sets ts.splice and fills the task's own dep/byte buffers; otherwise
// the launch proceeds to full analysis. Caller holds rt.mu.
func (s *Session) traceObserve(spec TaskSpec, ts *taskState) {
	at := s.trace
	pos := at.n
	at.n++

	if at.mode == trReplay && !at.failed {
		if pos < len(at.tmpl.tasks) {
			t := &at.tmpl.tasks[pos]
			if at.replayCompatible(t, spec) {
				ts.deps, ts.bytes = spliceDepsInto(
					t.deps, at.base, len(at.tmpl.tasks), ts.deps[:0], ts.bytes[:0])
				ts.splice = true
				return
			}
		}
		// Mismatch (or an instance longer than the template): fall back
		// to full analysis for the rest of the instance and drop the
		// template — it no longer describes this launch sequence.
		at.failed = true
		s.rt.stats.TraceFallbacks++
		delete(s.traces, at.key)
		return
	}

	// Record / calibrate: full analysis runs; build the candidate
	// fingerprint, and in calibrate mode keep validating against the
	// template so EndTrace knows whether captured edges are trustworthy.
	c := at.fingerprint(spec)
	at.cand = append(at.cand, c)
	if at.mode == trCalibrate && !at.failed {
		if pos >= len(at.tmpl.tasks) || !at.taskCompatible(at.tmpl.tasks[pos], c) {
			at.failed = true
		}
	}
}

// traceRecordAnalyzed stores an analyzed launch's edges into the
// candidate template (calibrate mode). Caller holds rt.mu; pos is the
// launch's position within the instance.
func (s *Session) traceRecordAnalyzed(pos int, deps, bytes []int64) {
	at := s.trace
	if at == nil || at.mode != trCalibrate || at.failed || pos >= len(at.cand) {
		return
	}
	prevBase := at.base - int64(at.tmpl.lastLen)
	at.cand[pos].deps = captureDeps(deps, bytes, at.base, prevBase)
}
