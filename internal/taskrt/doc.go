// Package taskrt is the task-oriented runtime substrate that stands in for
// Legion in this reproduction.
//
// Tasks declare the data they touch as region references — (region, field,
// index subset, privilege) tuples — and the runtime derives the dependence
// graph automatically, exactly as Legion's interference analysis does
// (Section 4.1 of the paper). Independent tasks execute concurrently on a
// goroutine worker pool; tasks related by a true dependence are ordered,
// and reduction tasks into overlapping data are serialized in launch order
// so floating-point results stay deterministic.
//
// Alongside real execution, every launch is recorded into a task Graph
// annotated with a simulated processor assignment, a roofline cost, and
// the bytes each dependence edge carries. The discrete-event simulator
// (package sim) replays that graph against a machine model to produce the
// per-iteration times of the paper's figures: the graph captures exactly
// which communication can overlap which computation, which is the property
// the paper's performance claims rest on.
//
// Dynamic-trace memoization (Lee et al., SC'18, cited as the overhead
// amortization mechanism in Section 4.1) is modeled by marking tasks
// launched inside a previously recorded trace: the dependence analysis
// still runs — the program is deterministic, so replayed graphs are
// identical — but replayed tasks carry the lower memoized launch overhead
// in the simulator.
//
// # Fault tolerance
//
// At the paper's target scale (256 nodes × 4 GPUs) task failures and
// stragglers are routine, so the runtime degrades gracefully instead of
// silently poisoning downstream data:
//
//   - A panicking task body is caught, never crashing the process. If the
//     task is Retryable (its body is idempotent) and a RetryPolicy is set,
//     the body is re-executed with backoff up to the attempt cap.
//   - A permanent failure (retries exhausted, or not retryable) resolves
//     the task's future to NaN with an error, and poisons its transitive
//     successors: they are cancelled without executing their bodies, and
//     their futures resolve to NaN with an error wrapping ErrPoisoned that
//     names the root failure. No successor of a permanently failed task
//     ever runs on garbage data.
//   - A watchdog (SetWatchdog) flags tasks running past a wall-clock
//     budget as stragglers in Stats and the attached obs.Recorder.
//   - Failures, retries, cancellations, and straggler flags are counted in
//     Stats and reported through the obs telemetry (span outcomes and
//     failure records).
//   - Deterministic fault injection (package fault, SetFaultInjector)
//     exercises every one of these paths reproducibly.
//
// # Postcondition: Drain, then Err
//
// The documented way to finish a computation is to call Drain, which
// blocks until every launched task has executed, retried, or been
// cancelled, and then Err, which aggregates every distinct permanent task
// failure into a single error (errors.Join) — nil means everything ran
// (possibly after retries). Callers that need per-failure detail attach an
// obs.Recorder; callers that need counts read Stats.
package taskrt
