// Package taskrt is the task-oriented runtime substrate that stands in for
// Legion in this reproduction.
//
// Tasks declare the data they touch as region references — (region, field,
// index subset, privilege) tuples — and the runtime derives the dependence
// graph automatically, exactly as Legion's interference analysis does
// (Section 4.1 of the paper). Independent tasks execute concurrently on a
// goroutine worker pool; tasks related by a true dependence are ordered,
// and reduction tasks into overlapping data are serialized in launch order
// so floating-point results stay deterministic.
//
// Alongside real execution, every launch is recorded into a task Graph
// annotated with a simulated processor assignment, a roofline cost, and
// the bytes each dependence edge carries. The discrete-event simulator
// (package sim) replays that graph against a machine model to produce the
// per-iteration times of the paper's figures: the graph captures exactly
// which communication can overlap which computation, which is the property
// the paper's performance claims rest on.
//
// Dynamic-trace memoization (Lee et al., SC'18, cited as the overhead
// amortization mechanism in Section 4.1) is modeled by marking tasks
// launched inside a previously recorded trace: the dependence analysis
// still runs — the program is deterministic, so replayed graphs are
// identical — but replayed tasks carry the lower memoized launch overhead
// in the simulator.
package taskrt
