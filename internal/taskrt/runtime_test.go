package taskrt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/region"
)

func ref(r *region.Region, field string, lo, hi int64, p region.Privilege) region.Ref {
	return region.Ref{Region: r.ID(), Field: field, Subset: index.Span(lo, hi), Priv: p}
}

func TestRAWDependence(t *testing.T) {
	rt := New()
	r := region.New("v", index.NewSpace("D", 8), "x")
	data := r.Field("x")

	rt.Launch(TaskSpec{
		Name: "write",
		Refs: []region.Ref{ref(r, "x", 0, 7, region.WriteDiscard)},
		Run: func() float64 {
			for i := range data {
				data[i] = 3
			}
			return 0
		},
	})
	sum := rt.Launch(TaskSpec{
		Name: "read",
		Refs: []region.Ref{ref(r, "x", 0, 7, region.ReadOnly)},
		Run: func() float64 {
			var s float64
			for _, v := range data {
				s += v
			}
			return s
		},
	})
	if got := sum.Value(); got != 24 {
		t.Fatalf("reader saw %g, want 24", got)
	}
	rt.Drain()

	g := rt.Graph()
	if g.Len() != 2 {
		t.Fatalf("graph has %d nodes", g.Len())
	}
	n := g.Nodes[1]
	if len(n.Deps) != 1 || n.Deps[0] != 0 {
		t.Fatalf("reader deps = %v", n.Deps)
	}
	if n.DepBytes[0] != 64 {
		t.Fatalf("dep bytes = %d, want 64", n.DepBytes[0])
	}
}

func TestIndependentTasksHaveNoEdges(t *testing.T) {
	rt := New()
	r := region.New("v", index.NewSpace("D", 16), "x")
	for c := 0; c < 4; c++ {
		lo := int64(c * 4)
		rt.Launch(TaskSpec{
			Name: "piece",
			Refs: []region.Ref{ref(r, "x", lo, lo+3, region.ReadWrite)},
			Run:  func() float64 { return 0 },
		})
	}
	rt.Drain()
	for _, n := range rt.Graph().Nodes {
		if len(n.Deps) != 0 {
			t.Fatalf("disjoint pieces must not depend on each other: %+v", n)
		}
	}
}

func TestReadersDoNotConflict(t *testing.T) {
	rt := New()
	r := region.New("v", index.NewSpace("D", 4), "x")
	for i := 0; i < 3; i++ {
		rt.Launch(TaskSpec{
			Name: "read",
			Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadOnly)},
		})
	}
	rt.Drain()
	if got := rt.Stats().DepEdges; got != 0 {
		t.Fatalf("readers produced %d edges", got)
	}
}

func TestWARAndWAWSerialize(t *testing.T) {
	rt := New()
	r := region.New("v", index.NewSpace("D", 4), "x")
	var order []string
	var mu sync.Mutex
	log := func(s string) func() float64 {
		return func() float64 {
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
			return 0
		}
	}
	rt.Launch(TaskSpec{Name: "w1", Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadWrite)}, Run: log("w1")})
	rt.Launch(TaskSpec{Name: "r1", Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadOnly)}, Run: log("r1")})
	rt.Launch(TaskSpec{Name: "w2", Refs: []region.Ref{ref(r, "x", 0, 3, region.WriteDiscard)}, Run: log("w2")})
	rt.Drain()
	if len(order) != 3 || order[0] != "w1" || order[1] != "r1" || order[2] != "w2" {
		t.Fatalf("order = %v, want [w1 r1 w2]", order)
	}
	// WriteDiscard after a reader is ordering-only: no bytes move.
	g := rt.Graph()
	for i, b := range g.Nodes[2].DepBytes {
		if b != 0 {
			t.Fatalf("w2 dep %d carries %d bytes, want 0", g.Nodes[2].Deps[i], b)
		}
	}
}

func TestReduceSerializedDeterministically(t *testing.T) {
	// Reductions into overlapping data run in launch order, keeping
	// floating-point results deterministic. We verify with a
	// non-commutative update that the order really is launch order.
	for trial := 0; trial < 10; trial++ {
		rt := New()
		r := region.New("acc", index.NewSpace("D", 1), "x")
		data := r.Field("x")
		data[0] = 0
		for i := 1; i <= 5; i++ {
			v := float64(i)
			rt.Launch(TaskSpec{
				Name: "reduce",
				Refs: []region.Ref{ref(r, "x", 0, 0, region.ReduceSum)},
				Run: func() float64 {
					data[0] = data[0]*10 + v
					return 0
				},
			})
		}
		rt.Drain()
		if data[0] != 12345 {
			t.Fatalf("trial %d: reductions ran out of order: %g", trial, data[0])
		}
	}
}

func TestPartialOverlapDependence(t *testing.T) {
	rt := New()
	r := region.New("v", index.NewSpace("D", 10), "x")
	rt.Launch(TaskSpec{Name: "a", Refs: []region.Ref{ref(r, "x", 0, 5, region.ReadWrite)}})
	rt.Launch(TaskSpec{Name: "b", Refs: []region.Ref{ref(r, "x", 6, 9, region.ReadWrite)}})
	rt.Launch(TaskSpec{Name: "c", Refs: []region.Ref{ref(r, "x", 4, 7, region.ReadOnly)}})
	rt.Drain()
	g := rt.Graph()
	c := g.Nodes[2]
	if len(c.Deps) != 2 {
		t.Fatalf("c deps = %v, want both writers", c.Deps)
	}
	// Bytes: overlap with a is [4,5] = 16B, with b is [6,7] = 16B.
	for i := range c.Deps {
		if c.DepBytes[i] != 16 {
			t.Fatalf("dep %d bytes = %d, want 16", c.Deps[i], c.DepBytes[i])
		}
	}
}

func TestHistoryDomination(t *testing.T) {
	// Repeated full-region writers prune the history so analysis work per
	// launch stays constant across iterations.
	rt := New()
	r := region.New("v", index.NewSpace("D", 64), "x")
	for i := 0; i < 50; i++ {
		rt.Launch(TaskSpec{Name: "w", Refs: []region.Ref{ref(r, "x", 0, 63, region.ReadWrite)}})
	}
	rt.Drain()
	st := rt.Stats()
	// Each launch after the first scans exactly one history entry.
	if st.AnalysisScans > 2*st.Launched {
		t.Fatalf("history not pruned: %d scans for %d launches", st.AnalysisScans, st.Launched)
	}
	// And the chain is fully serialized.
	g := rt.Graph()
	for i := 1; i < g.Len(); i++ {
		if len(g.Nodes[i].Deps) != 1 || g.Nodes[i].Deps[0] != int64(i-1) {
			t.Fatalf("node %d deps = %v", i, g.Nodes[i].Deps)
		}
	}
}

func TestNoSelfDependence(t *testing.T) {
	rt := New()
	r := region.New("v", index.NewSpace("D", 8), "x")
	// One task both reads and writes overlapping subsets of one field.
	rt.Launch(TaskSpec{Name: "rw", Refs: []region.Ref{
		ref(r, "x", 0, 7, region.ReadOnly),
		ref(r, "x", 2, 5, region.ReadWrite),
	}})
	rt.Drain()
	n := rt.Graph().Nodes[0]
	if len(n.Deps) != 0 {
		t.Fatalf("task depends on itself: %v", n.Deps)
	}
}

func TestFutures(t *testing.T) {
	rt := New()
	f := rt.Launch(TaskSpec{Name: "t", Run: func() float64 { return 42 }})
	if got := f.Value(); got != 42 {
		t.Fatalf("Value = %g", got)
	}
	if !f.Ready() {
		t.Fatal("future should be ready after Value")
	}
	if Resolved(7).Value() != 7 || !Resolved(7).Ready() {
		t.Fatal("Resolved wrong")
	}
	rt.Drain()
}

func TestTraceReplayFlags(t *testing.T) {
	rt := New()
	r := region.New("v", index.NewSpace("D", 4), "x")
	iter := func() {
		rt.BeginTrace("cg-step")
		rt.Launch(TaskSpec{Name: "a", Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadWrite)}})
		rt.Launch(TaskSpec{Name: "b", Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadOnly)}})
		rt.EndTrace()
	}
	iter() // records the fingerprint
	iter() // calibrates: validates and captures edges
	scansBeforeReplay := rt.Stats().AnalysisScans
	iter() // replays
	iter() // replays
	rt.Drain()
	g := rt.Graph()
	for i, n := range g.Nodes {
		wantTraced := i >= 4
		if n.Traced != wantTraced {
			t.Errorf("node %d Traced = %v, want %v", i, n.Traced, wantTraced)
		}
	}
	st := rt.Stats()
	if st.TraceReplays != 4 {
		t.Fatalf("TraceReplays = %d, want 4", st.TraceReplays)
	}
	if st.TraceHits != 2 || st.TraceMisses != 2 {
		t.Fatalf("TraceHits/Misses = %d/%d, want 2/2", st.TraceHits, st.TraceMisses)
	}
	if st.AnalysisScans != scansBeforeReplay {
		t.Fatalf("replayed iterations performed %d analysis scans, want 0",
			st.AnalysisScans-scansBeforeReplay)
	}
}

func TestTraceMisuse(t *testing.T) {
	rt := New()
	rt.BeginTrace("t")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nested BeginTrace should panic")
			}
		}()
		rt.BeginTrace("u")
	}()
	rt.EndTrace()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unmatched EndTrace should panic")
			}
		}()
		rt.EndTrace()
	}()
}

func TestStressRandomDAGRespectsDependences(t *testing.T) {
	// Launch many tasks with random subsets; every task records a
	// timestamp on start and verifies that all graph dependences
	// completed first.
	rt := New()
	r := region.New("v", index.NewSpace("D", 40), "x")
	const n = 300
	var clock atomic.Int64
	started := make([]atomic.Int64, n)
	finished := make([]atomic.Int64, n)
	rng := rand.New(rand.NewSource(7))
	privs := []region.Privilege{region.ReadOnly, region.ReadWrite, region.WriteDiscard, region.ReduceSum}
	for i := 0; i < n; i++ {
		lo := rng.Int63n(40)
		hi := lo + rng.Int63n(40-lo)
		p := privs[rng.Intn(len(privs))]
		i := i
		rt.Launch(TaskSpec{
			Name: "t",
			Refs: []region.Ref{ref(r, "x", lo, hi, p)},
			Run: func() float64 {
				started[i].Store(clock.Add(1))
				finished[i].Store(clock.Add(1))
				return 0
			},
		})
	}
	rt.Drain()
	g := rt.Graph()
	for i, node := range g.Nodes {
		for _, d := range node.Deps {
			if finished[d].Load() >= started[i].Load() {
				t.Fatalf("task %d started at %d before dep %d finished at %d",
					i, started[i].Load(), d, finished[d].Load())
			}
		}
	}
	if rt.String() == "" {
		t.Fatal("String empty")
	}
}

func TestGraphCostHelpers(t *testing.T) {
	var g Graph
	a := g.Add(Node{Name: "a", Cost: 2})
	b := g.Add(Node{Name: "b", Cost: 3})
	g.Add(Node{Name: "c", Cost: 4, Deps: []int64{a, b}})
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := g.TotalCost(); got != 9 {
		t.Fatalf("TotalCost = %g", got)
	}
	// Critical path: max(2,3) + 4 = 7.
	if got := g.CriticalPathCost(); got != 7 {
		t.Fatalf("CriticalPathCost = %g", got)
	}
}

func TestMappers(t *testing.T) {
	rr := RoundRobinMapper{NumProcs: 4}
	if rr.SelectProc("x", 0) != 0 || rr.SelectProc("x", 5) != 1 {
		t.Error("round robin wrong")
	}
	if (RoundRobinMapper{}).SelectProc("x", 3) != 0 {
		t.Error("degenerate round robin should pin to 0")
	}
	if (FixedMapper{Proc: 2}).SelectProc("x", 9) != 2 {
		t.Error("fixed mapper wrong")
	}
	fm := FuncMapper(func(name string, color int) int { return color * 2 })
	if fm.SelectProc("x", 3) != 6 {
		t.Error("func mapper wrong")
	}
}

func TestConcurrentLaunchSafety(t *testing.T) {
	// The runtime documents Launch as safe for concurrent use; hammer it
	// from several goroutines against disjoint regions and one shared
	// region.
	rt := New()
	shared := region.New("s", index.NewSpace("D", 8), "x")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		own := region.New("own", index.NewSpace("D", 16), "x")
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rt.Launch(TaskSpec{
					Name: "w",
					Refs: []region.Ref{
						ref(own, "x", 0, 15, region.ReadWrite),
						ref(shared, "x", 0, 7, region.ReadOnly),
					},
				})
			}
		}()
	}
	wg.Wait()
	rt.Drain()
	if got := rt.Stats().Launched; got != 400 {
		t.Fatalf("Launched = %d, want 400", got)
	}
	g := rt.Graph()
	// Each goroutine's own-region chain must be fully ordered; readers of
	// the shared region must not conflict with each other.
	for _, n := range g.Nodes {
		for i, d := range n.Deps {
			if d >= n.ID {
				t.Fatalf("non-topological dep %d -> %d", n.ID, d)
			}
			if n.DepBytes[i] < 0 {
				t.Fatalf("negative bytes")
			}
		}
	}
}

func TestFutureValueFromManyWaiters(t *testing.T) {
	rt := New()
	fut := rt.Launch(TaskSpec{Name: "slow", Run: func() float64 { return 3.5 }})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if fut.Value() != 3.5 {
				t.Error("wrong value")
			}
		}()
	}
	wg.Wait()
	rt.Drain()
}

func TestGraphSnapshotIsolation(t *testing.T) {
	rt := New()
	r := region.New("v", index.NewSpace("D", 4), "x")
	rt.Launch(TaskSpec{Name: "a", Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadWrite)}})
	rt.Drain()
	g1 := rt.Graph()
	rt.Launch(TaskSpec{Name: "b", Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadWrite)}})
	rt.Drain()
	if g1.Len() != 1 {
		t.Fatalf("snapshot mutated: %d", g1.Len())
	}
	if rt.Graph().Len() != 2 {
		t.Fatalf("graph = %d", rt.Graph().Len())
	}
}

func TestPanickingTaskIsCaptured(t *testing.T) {
	rt := New()
	r := region.New("v", index.NewSpace("D", 4), "x")
	bad := rt.Launch(TaskSpec{
		Name: "explode",
		Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadWrite)},
		Run:  func() float64 { panic("kernel bug") },
	})
	// A dependent task must NOT run its body: the failure poisons it.
	ran := false
	after := rt.Launch(TaskSpec{
		Name: "after",
		Refs: []region.Ref{ref(r, "x", 0, 3, region.ReadOnly)},
		Run:  func() float64 { ran = true; return 1 },
	})
	rt.Drain()
	if !math.IsNaN(bad.Value()) {
		t.Fatalf("failed task future = %g, want NaN", bad.Value())
	}
	if ran {
		t.Fatal("successor of a failed task must not execute its body")
	}
	if !math.IsNaN(after.Value()) {
		t.Fatalf("poisoned future = %g, want NaN", after.Value())
	}
	if !errors.Is(after.Err(), ErrPoisoned) {
		t.Fatalf("poisoned future Err = %v, want ErrPoisoned", after.Err())
	}
	err := rt.Err()
	if err == nil || !strings.Contains(err.Error(), "explode") || !strings.Contains(err.Error(), "kernel bug") {
		t.Fatalf("Err = %v", err)
	}
}

func TestErrKeepsFirstFailure(t *testing.T) {
	rt := New()
	r := region.New("v", index.NewSpace("D", 1), "x")
	for i := 0; i < 3; i++ {
		msg := fmt.Sprintf("boom-%d", i)
		rt.Launch(TaskSpec{
			Name: "f",
			Refs: []region.Ref{ref(r, "x", 0, 0, region.ReadWrite)},
			Run:  func() float64 { panic(msg) },
		})
	}
	rt.Drain()
	if err := rt.Err(); err == nil || !strings.Contains(err.Error(), "boom-0") {
		t.Fatalf("Err = %v, want the first failure", err)
	}
}

func TestErrNilOnSuccess(t *testing.T) {
	rt := New()
	rt.Launch(TaskSpec{Name: "ok", Run: func() float64 { return 1 }})
	rt.Drain()
	if err := rt.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

func TestHistoryShrinkingBoundsReaderEntries(t *testing.T) {
	// The Figure 10 pattern: long-lived whole-piece readers (dot
	// partials) interleaved with writers that each touch one block.
	// Shrinking must keep per-launch analysis work constant across
	// iterations instead of scanning an ever-growing reader list.
	rt := New()
	r := region.New("y", index.NewSpace("R", 64), "x")
	const iters = 60
	for i := 0; i < iters; i++ {
		// Four block writers...
		for b := int64(0); b < 4; b++ {
			rt.Launch(TaskSpec{Name: "w", Refs: []region.Ref{
				ref(r, "x", b*16, b*16+15, region.WriteDiscard),
			}})
		}
		// ...then a whole-piece reader.
		rt.Launch(TaskSpec{Name: "read", Refs: []region.Ref{
			ref(r, "x", 0, 63, region.ReadOnly),
		}})
	}
	rt.Drain()
	st := rt.Stats()
	perLaunch := float64(st.AnalysisScans) / float64(st.Launched)
	if perLaunch > 8 {
		t.Fatalf("history grows: %.1f scans per launch", perLaunch)
	}
}

func TestHistoryShrinkingRoutesBytesPerProducer(t *testing.T) {
	// A reader spanning two writers' regions pulls each part from the
	// writer that produced it — not the full overlap from both.
	rt := New()
	r := region.New("y", index.NewSpace("R", 10), "x")
	w1 := rt.Launch(TaskSpec{Name: "w1", Refs: []region.Ref{ref(r, "x", 0, 9, region.ReadWrite)}})
	_ = w1
	rt.Launch(TaskSpec{Name: "w2", Refs: []region.Ref{ref(r, "x", 0, 4, region.ReadWrite)}})
	rt.Launch(TaskSpec{Name: "read", Refs: []region.Ref{ref(r, "x", 0, 9, region.ReadOnly)}})
	rt.Drain()
	g := rt.Graph()
	read := g.Nodes[2]
	if len(read.Deps) != 2 {
		t.Fatalf("reader deps = %v, want both writers", read.Deps)
	}
	bytesByDep := map[int64]int64{}
	for i, d := range read.Deps {
		bytesByDep[d] = read.DepBytes[i]
	}
	// w2 produced [0,4] (40 bytes); w1 still owns [5,9] (40 bytes).
	if bytesByDep[0] != 40 || bytesByDep[1] != 40 {
		t.Fatalf("byte routing wrong: %v", bytesByDep)
	}
}

func TestIndexLaunch(t *testing.T) {
	rt := New()
	r := region.New("v", index.NewSpace("D", 16), "x")
	data := r.Field("x")
	futs := rt.IndexLaunch(4, func(c int) TaskSpec {
		lo := int64(c * 4)
		return TaskSpec{
			Name: "fill", Proc: c,
			Refs: []region.Ref{ref(r, "x", lo, lo+3, region.WriteDiscard)},
			Run: func() float64 {
				for i := lo; i < lo+4; i++ {
					data[i] = float64(c)
				}
				return float64(c)
			},
		}
	})
	if len(futs) != 4 {
		t.Fatalf("futures = %d", len(futs))
	}
	for c, f := range futs {
		if f.Value() != float64(c) {
			t.Fatalf("future %d = %g", c, f.Value())
		}
	}
	rt.Drain()
	// Disjoint point tasks: no dependence edges.
	for _, n := range rt.Graph().Nodes {
		if len(n.Deps) != 0 {
			t.Fatalf("point tasks over a disjoint partition must be independent: %+v", n)
		}
	}
	if data[0] != 0 || data[15] != 3 {
		t.Fatal("point tasks did not run")
	}
}

func TestTraceReplayTwoCyclesSameKey(t *testing.T) {
	// The third back-to-back cycle under the same key must replay: the
	// first records the fingerprint, the second calibrates the edges,
	// and TraceReplays counts exactly the spliced tasks. A later cycle
	// under a fresh key records again and replays nothing.
	rt := New()
	r := region.New("v", index.NewSpace("D", 8), "x")
	cycle := func(key string) {
		rt.BeginTrace(key)
		rt.Launch(TaskSpec{Name: "a", Refs: []region.Ref{ref(r, "x", 0, 7, region.ReadWrite)}})
		rt.Launch(TaskSpec{Name: "b", Refs: []region.Ref{ref(r, "x", 0, 7, region.ReadOnly)}})
		rt.Launch(TaskSpec{Name: "c", Refs: []region.Ref{ref(r, "x", 0, 7, region.ReadOnly)}})
		rt.EndTrace()
	}
	cycle("step")
	cycle("step")
	if got := rt.Stats().TraceReplays; got != 0 {
		t.Fatalf("after record+calibrate cycles: TraceReplays = %d, want 0", got)
	}
	cycle("step")
	if got := rt.Stats().TraceReplays; got != 3 {
		t.Fatalf("after replay cycle: TraceReplays = %d, want 3", got)
	}
	cycle("other")
	rt.Drain()
	if got := rt.Stats().TraceReplays; got != 3 {
		t.Fatalf("fresh key must record, not replay: TraceReplays = %d, want 3", got)
	}
	g := rt.Graph()
	if g.Len() != 12 {
		t.Fatalf("graph has %d nodes, want 12", g.Len())
	}
	for i, n := range g.Nodes {
		wantTraced := i >= 6 && i < 9
		if n.Traced != wantTraced {
			t.Errorf("node %d Traced = %v, want %v", i, n.Traced, wantTraced)
		}
	}
}

func TestIndexLaunchFutureColorOrder(t *testing.T) {
	// futs[c] must be color c's future regardless of processor mapping or
	// completion order; map colors to processors in reverse to make an
	// ordering mix-up visible.
	rt := New()
	r := region.New("v", index.NewSpace("D", 32), "x")
	futs := rt.IndexLaunch(8, func(c int) TaskSpec {
		lo := int64(c * 4)
		return TaskSpec{
			Name: "point", Proc: 7 - c,
			Refs: []region.Ref{ref(r, "x", lo, lo+3, region.WriteDiscard)},
			Run:  func() float64 { return float64(c*c + 1) },
		}
	})
	for c, f := range futs {
		if got, want := f.Value(), float64(c*c+1); got != want {
			t.Fatalf("future %d = %g, want %g", c, got, want)
		}
	}
	rt.Drain()
	for i, n := range rt.Graph().Nodes {
		if want := 7 - i; n.Proc != want {
			t.Errorf("node %d mapped to proc %d, want %d", i, n.Proc, want)
		}
	}
}
