package taskrt

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"kdrsolvers/internal/fault"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/region"
)

// A Session scopes a client's launches within a shared runtime. The
// runtime multiplexes many sessions over one worker pool and one
// dependence engine; everything that is *about the client* rather than
// about the machine lives on the session:
//
//   - the error window: permanent failures of tasks the session launched
//     accumulate on the session (bounded, clearable), so one tenant's
//     fault never pollutes another tenant's Err(),
//   - the poison ledger and quiescence window: a failure is "handled"
//     once the session that launched it drains, independent of whether
//     the runtime as a whole ever goes idle (a long-running server
//     never does),
//   - phase labels (with an optional per-session prefix, so spans from
//     concurrent solves stay attributable),
//   - trace memoization scopes and templates,
//   - the fault injector and observability recorder,
//   - per-session launch statistics and Drain.
//
// Sessions sharing a runtime must reference disjoint regions (separate
// planners guarantee this); read-only sharing is also safe. Methods on
// one session follow the runtime's existing contract: Launch and
// LaunchBatch are safe for concurrent use, trace scopes assume a single
// launching goroutine per session.
//
// Every runtime owns a default session (DefaultSession); the runtime's
// legacy session-scoped methods (SetPhase, Err, BeginTrace, ...) operate
// on it, so single-tenant clients keep working unchanged.
type Session struct {
	rt     *Runtime
	name   string
	prefix string // applied to SetPhase labels; "" for the default session

	// wg tracks the session's own in-flight tasks, so Drain waits for
	// exactly this session's work while other tenants keep running.
	wg sync.WaitGroup

	// Everything below is guarded by rt.mu: the launch and completion
	// paths already hold it where these fields are touched, so session
	// scoping adds no locking to the hot path.
	phase       string
	errs        []error
	errsDropped int64
	inflight    int64
	failed      map[int64]error
	stats       SessionStats
	retry       RetryPolicy
	watchdog    time.Duration
	injector    *fault.Injector
	rec         *obs.Recorder
	traces      map[string]*traceTmpl
	trace       *activeTrace
	atScratch   *activeTrace
	atEpoch     int64
	closed      bool
}

// SessionStats counts one session's runtime activity.
type SessionStats struct {
	// Launched is the number of tasks the session launched.
	Launched int64
	// DepEdges is the number of dependence edges among them. Sessions
	// with disjoint regions discover no cross-session edges, which is
	// the no-false-serialization property multi-tenant tests assert.
	DepEdges int64
	// Failed counts the session's permanent task failures, Retries its
	// re-execution attempts, Poisoned its cancelled successors, and
	// Corrupted its silently corrupted task outputs.
	Failed, Retries, Poisoned, Corrupted int64
	// ErrsDropped counts permanent failures evicted from the bounded
	// error window (the joined Err reports at most maxSessionErrs).
	ErrsDropped int64
}

// maxSessionErrs bounds one session's error window. A long-running
// session under sustained faults keeps the most recent failures instead
// of accumulating every failure in history; SessionStats.ErrsDropped
// counts the evictions.
const maxSessionErrs = 64

// DefaultSession returns the runtime's built-in session, the one the
// runtime-level Launch/SetPhase/Err/BeginTrace methods operate on.
func (rt *Runtime) DefaultSession() *Session { return rt.def }

// NewSession registers a new session named name. A non-empty name
// becomes a "name/" prefix on the session's phase labels, so spans and
// graph nodes from concurrent sessions stay attributable.
func (rt *Runtime) NewSession(name string) *Session {
	s := &Session{
		rt:     rt,
		name:   name,
		failed: make(map[int64]error),
		traces: make(map[string]*traceTmpl),
	}
	if name != "" {
		s.prefix = name + "/"
	}
	rt.mu.Lock()
	rt.sessions = append(rt.sessions, s)
	rt.mu.Unlock()
	return s
}

// Sessions returns the number of live (unclosed) sessions, the default
// session included.
func (rt *Runtime) Sessions() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.sessions)
}

// Name returns the session's name ("" for the default session).
func (s *Session) Name() string { return s.name }

// Runtime returns the runtime the session launches into.
func (s *Session) Runtime() *Runtime { return s.rt }

// Close unregisters the session: its error window, trace templates, and
// ledger are released, and its errors stop contributing to the
// runtime-level Err. Close does not wait for in-flight tasks — call
// Drain first. Closing the default session or closing twice is a no-op.
func (s *Session) Close() {
	rt := s.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if s.closed || s == rt.def {
		return
	}
	s.closed = true
	for i, t := range rt.sessions {
		if t == s {
			rt.sessions = append(rt.sessions[:i], rt.sessions[i+1:]...)
			break
		}
	}
	s.errs = nil
	s.traces = nil
	s.trace = nil
	s.atScratch = nil
}

// Launch submits a task under this session. See Runtime.Launch.
func (s *Session) Launch(spec TaskSpec) *Future { return s.rt.launch(s, spec) }

// LaunchBatch submits a fused batch under this session. See
// Runtime.LaunchBatch.
func (s *Session) LaunchBatch(specs []TaskSpec) []*Future { return s.rt.launchBatch(s, specs) }

// IndexLaunch launches one point task per color under this session. See
// Runtime.IndexLaunch.
func (s *Session) IndexLaunch(n int, point func(color int) TaskSpec) []*Future {
	specs := make([]TaskSpec, n)
	for c := 0; c < n; c++ {
		specs[c] = point(c)
	}
	return s.LaunchBatch(specs)
}

// SetPhase labels the session's subsequently launched tasks with a
// solver-phase name, prefixed with the session name for non-default
// sessions. Specs carrying their own Phase override it.
func (s *Session) SetPhase(label string) {
	s.rt.mu.Lock()
	if label == "" {
		s.phase = s.prefix
	} else {
		s.phase = s.prefix + label
	}
	s.rt.mu.Unlock()
}

// SetFaultInjector installs a fault injector consulted once per launch
// of this session only — one tenant's chaos plan never fires in
// another tenant's tasks. A nil injector disables injection.
func (s *Session) SetFaultInjector(in *fault.Injector) {
	s.rt.mu.Lock()
	s.injector = in
	s.rt.mu.Unlock()
}

// SetRetryPolicy bounds re-execution of the session's retryable task
// bodies. See Runtime.SetRetryPolicy.
func (s *Session) SetRetryPolicy(p RetryPolicy) {
	s.rt.mu.Lock()
	s.retry = p
	s.rt.mu.Unlock()
}

// SetWatchdog flags this session's tasks running past budget as
// stragglers. See Runtime.SetWatchdog.
func (s *Session) SetWatchdog(budget time.Duration) {
	s.rt.mu.Lock()
	s.watchdog = budget
	s.rt.mu.Unlock()
}

// FaultsActive reports whether the session has a fault injector.
func (s *Session) FaultsActive() bool {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	return s.injector != nil
}

// SetRecorder attaches an observability recorder to the session: tasks
// it launches from now on record spans and failures there. A nil
// recorder disables recording.
func (s *Session) SetRecorder(r *obs.Recorder) {
	s.rt.mu.Lock()
	s.rec = r
	s.rt.mu.Unlock()
}

// Recorder returns the session's recorder, or nil.
func (s *Session) Recorder() *obs.Recorder {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	return s.rec
}

// Drain blocks until every task this session launched has completed,
// retried, or been cancelled — other sessions' work is not waited on.
func (s *Session) Drain() { s.wg.Wait() }

// Err joins the session's error window — its permanent task failures
// since the last ClearErrs, newest window of at most maxSessionErrs —
// or nil. Other sessions' failures never appear here. Call Drain first
// for a complete picture.
func (s *Session) Err() error {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	return errors.Join(s.errs...)
}

// ClearErrs empties the session's error window and returns how many
// failures it held (evicted ones included). Resilient drivers call it
// once a rollback has provably recovered — a verified checkpoint or a
// true-residual-verified convergence — so a recovered fault stops
// reporting as a live error for the rest of a long-running session.
func (s *Session) ClearErrs() int64 {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	n := int64(len(s.errs)) + s.errsDropped
	s.errs = nil
	s.errsDropped = 0
	return n
}

// pushErr appends a permanent failure to the bounded error window.
// Caller holds rt.mu.
func (s *Session) pushErr(err error) {
	if len(s.errs) >= maxSessionErrs {
		copy(s.errs, s.errs[1:])
		s.errs = s.errs[:maxSessionErrs-1]
		s.errsDropped++
		s.stats.ErrsDropped++
	}
	s.errs = append(s.errs, err)
}

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() SessionStats {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	return s.stats
}

// BeginTrace opens a trace scope on this session. Trace templates are
// per-session: concurrent sessions replaying the same solver never
// share or invalidate each other's templates. Interleaved launches from
// other sessions do break the gapless-adjacency precondition of replay
// (task IDs are global), demoting instances to full analysis — a
// performance fallback, never a correctness hazard. See
// Runtime.BeginTrace for the template lifecycle.
func (s *Session) BeginTrace(key string) {
	rt := s.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if s.trace != nil {
		panic("taskrt: traces must not nest")
	}
	tmpl := s.traces[key]
	if tmpl == nil {
		tmpl = &traceTmpl{}
		s.traces[key] = tmpl
	}
	at := s.atScratch
	if at == nil {
		at = &activeTrace{}
		s.atScratch = at
	}
	s.atEpoch++
	at.key = key
	at.tmpl = tmpl
	at.base = rt.nextID
	at.n = 0
	at.watermark = region.LastID()
	at.fresh = tmpl.freshBufs[tmpl.flip][:0]
	if at.freshIdx != nil {
		clear(at.freshIdx)
	}
	if at.prevIdx != nil {
		clear(at.prevIdx)
	}
	at.cand = nil // escapes into the template at EndTrace; never reused
	at.failed = false
	adjacent := tmpl.lastOK && tmpl.lastBase+int64(tmpl.lastLen) == rt.nextID
	switch {
	case !adjacent:
		// A gap (foreign launches, another key, a failed instance)
		// invalidates captured edges: ancient entries may have been
		// shadowed and prev offsets no longer line up. Re-establish
		// adjacency with one analyzed instance, then recalibrate.
		at.mode = trRecord
		tmpl.hasDeps = false
	case !tmpl.hasDeps:
		at.mode = trCalibrate
	default:
		at.mode = trReplay
	}
	if at.mode != trRecord && len(tmpl.lastFresh) > 0 {
		if at.prevIdx == nil {
			at.prevIdx = make(map[region.ID]int, len(tmpl.lastFresh))
		}
		for j, id := range tmpl.lastFresh {
			at.prevIdx[id] = j
		}
	}
	s.trace = at
}

// EndTrace closes the session's current trace scope. See
// Runtime.EndTrace.
func (s *Session) EndTrace() {
	rt := s.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if s.trace == nil {
		panic("taskrt: EndTrace without BeginTrace")
	}
	at := s.trace
	s.trace = nil
	tmpl := at.tmpl

	if at.mode == trReplay {
		if at.failed {
			// traceObserve already dropped the template.
			rt.stats.TraceMisses++
			return
		}
		if at.n != len(tmpl.tasks) {
			// Shorter instance: every spliced launch was individually
			// valid, but this instance cannot anchor the next replay.
			tmpl.lastOK = false
			rt.stats.TraceMisses++
			return
		}
		tmpl.lastOK = true
		tmpl.lastBase = at.base
		tmpl.lastLen = at.n
		tmpl.lastFresh = at.fresh
		tmpl.freshBufs[tmpl.flip] = at.fresh
		tmpl.flip ^= 1
		rt.stats.TraceHits++
		return
	}

	rt.stats.TraceMisses++
	calibrated := at.mode == trCalibrate && !at.failed && at.n == len(tmpl.tasks)
	// The candidate becomes the template: identical to the old one when
	// the instance matched (modulo stable→prev upgrades), the new truth
	// when it did not.
	tmpl.tasks = at.cand
	tmpl.hasDeps = calibrated
	tmpl.lastOK = true
	tmpl.lastBase = at.base
	tmpl.lastLen = at.n
	tmpl.lastFresh = at.fresh
	tmpl.freshBufs[tmpl.flip] = at.fresh
	tmpl.flip ^= 1
}

// String summarizes the session.
func (s *Session) String() string {
	st := s.Stats()
	name := s.name
	if name == "" {
		name = "default"
	}
	return fmt.Sprintf("session(%s: %d tasks, %d edges)", name, st.Launched, st.DepEdges)
}
