package taskrt

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/region"
)

// waitRetired spins until the task with the given ID has left rt.tasks —
// i.e. its completion has run past the point where a later launch would
// find it live and wire onto it. Tests use this to deterministically
// steer a consumer launch into finishLocked's dead-predecessor branch.
func waitRetired(rt *Runtime, id int64) {
	for {
		rt.mu.Lock()
		_, live := rt.tasks[id]
		rt.mu.Unlock()
		if !live {
			return
		}
		runtime.Gosched()
	}
}

// TestMidFlightFailurePoisonsLateWiredConsumers is the regression for
// the pooled-future poisoning hole: a producer fails while other work is
// still in flight (so the client cannot have drained the failure), and a
// consumer of the producer's region launches after the producer has
// already retired from the live-task table. Before the failure ledger,
// finishLocked treated every dead predecessor as a handled failure and
// ran the consumer on the garbage region — resolving its pooled Future
// with a stale-looking clean value. The consumer must instead be
// poisoned, through Launch and LaunchBatch alike.
func TestMidFlightFailurePoisonsLateWiredConsumers(t *testing.T) {
	// The blocker below parks inside a worker; the runtime sizes its pool
	// to GOMAXPROCS at construction, so guarantee a second worker exists
	// for the producer even on a single-CPU machine.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rt := New()
	r := region.New("v", index.NewSpace("D", 8), "x")
	park := region.New("p", index.NewSpace("P", 1), "x")

	// The blocker keeps the runtime non-quiescent across the whole
	// scenario: with it parked, inflight never reaches zero, so the
	// failure below stays "mid-flight" rather than drained.
	release := make(chan struct{})
	rt.Launch(TaskSpec{ // id 0
		Name: "blocker",
		Refs: []region.Ref{ref(park, "x", 0, 0, region.ReadWrite)},
		Run:  func() float64 { <-release; return 0 },
	})

	bad := rt.Launch(TaskSpec{ // id 1
		Name: "producer",
		Refs: []region.Ref{ref(r, "x", 0, 7, region.WriteDiscard)},
		Run:  func() float64 { panic("producer died") },
	})
	if !math.IsNaN(bad.Value()) {
		t.Fatalf("failed producer future = %g, want NaN", bad.Value())
	}
	waitRetired(rt, 1)

	// Launch path: the consumer's dependence analysis still finds the
	// dead producer in the history shards, so it must pick the poison up
	// from the failure ledger.
	var ran atomic.Int64
	lone := rt.Launch(TaskSpec{
		Name: "consumer",
		Refs: []region.Ref{ref(r, "x", 0, 7, region.ReadOnly)},
		Run:  func() float64 { ran.Add(1); return 1 },
	})

	// Batch path: the batch's unlocked resolve phase is the original
	// race window. One spec consumes the failed region, one is
	// independent and must be unaffected.
	futs := rt.LaunchBatch([]TaskSpec{
		{
			Name: "batch-consumer",
			Refs: []region.Ref{ref(r, "x", 0, 7, region.ReadWrite)},
			Run:  func() float64 { ran.Add(1); return 2 },
		},
		{
			Name: "batch-clean",
			Refs: []region.Ref{ref(park, "x", 0, 0, region.ReadOnly)},
			Run:  func() float64 { return 3 },
		},
	})

	for _, f := range []*Future{lone, futs[0]} {
		if !math.IsNaN(f.Value()) {
			t.Errorf("poisoned consumer future = %g, want NaN", f.Value())
		}
		if !errors.Is(f.Err(), ErrPoisoned) {
			t.Errorf("poisoned consumer Err = %v, want ErrPoisoned", f.Err())
		}
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d consumer bodies ran on a failed region", n)
	}

	close(release)
	rt.Drain()
	if got := futs[1].Value(); got != 3 {
		t.Errorf("independent batch spec = %g, want 3", got)
	}

	// Quiescence clears the ledger: the failure has been observable via
	// Err, so recovery launches (SolveResilient's checkpoint restore)
	// start from a clean slate exactly as before the fix.
	rt.mu.Lock()
	ledger := len(rt.def.failed)
	rt.mu.Unlock()
	if ledger != 0 {
		t.Errorf("failure ledger holds %d entries after quiescence", ledger)
	}
	clean := rt.Launch(TaskSpec{
		Name: "recovery",
		Refs: []region.Ref{ref(r, "x", 0, 7, region.WriteDiscard)},
		Run:  func() float64 { return 7 },
	})
	if got := clean.Value(); got != 7 {
		t.Errorf("post-drain recovery task = %g (err %v), want 7", got, clean.Err())
	}
	rt.Drain()
	if err := rt.Err(); err == nil {
		t.Error("Err lost the root producer failure")
	}
}

// TestPoisonLedgerHammer drives concurrent batch launchers over disjoint
// spans with intermittent producer failures under -race. Each failing
// producer NaN-stamps its span before panicking; a reader that the
// runtime lets run must therefore never observe NaN — pre-fix, readers
// wired after a mid-flight failure did exactly that.
func TestPoisonLedgerHammer(t *testing.T) {
	rt := New()
	const lanes, rounds, width = 4, 40, 8
	r := region.New("v", index.NewSpace("D", lanes*width), "x")
	data := r.Field("x")

	var wg sync.WaitGroup
	var sawGarbage atomic.Int64
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			lo := int64(lane * width)
			hi := lo + width - 1
			for i := 0; i < rounds; i++ {
				val := float64(i + 1)
				fail := i%5 == 3
				rt.LaunchBatch([]TaskSpec{
					{
						Name: "w",
						Refs: []region.Ref{ref(r, "x", lo, hi, region.WriteDiscard)},
						Run: func() float64 {
							for j := lo; j <= hi; j++ {
								if fail {
									data[j] = math.NaN()
								} else {
									data[j] = val
								}
							}
							if fail {
								panic("lane producer died")
							}
							return 0
						},
					},
					{
						Name: "r",
						Refs: []region.Ref{ref(r, "x", lo, hi, region.ReadOnly)},
						Run: func() float64 {
							for j := lo; j <= hi; j++ {
								if math.IsNaN(data[j]) {
									sawGarbage.Add(1)
									break
								}
							}
							return 0
						},
					},
				})
			}
		}(lane)
	}
	wg.Wait()
	rt.Drain()

	if n := sawGarbage.Load(); n != 0 {
		t.Errorf("%d readers ran on NaN-stamped failed regions", n)
	}
	if rt.Stats().Poisoned == 0 {
		t.Error("hammer never exercised the poison path")
	}
	rt.mu.Lock()
	ledger := len(rt.def.failed)
	rt.mu.Unlock()
	if ledger != 0 {
		t.Errorf("failure ledger holds %d entries after drain", ledger)
	}
}
