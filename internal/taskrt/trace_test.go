package taskrt

import (
	"sync"
	"testing"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/region"
)

// syntheticCG drives a CG-shaped launch sequence against rt: stable
// workspace vectors, a fresh dot-scratch scalar per iteration, and a
// residual scalar produced each iteration and read by the next — the
// exact region lifecycle that forces the tracer through rcStable, rcCur,
// rcPrev, and ancient-edge handling. mutate, when non-nil, is called with
// the iteration number and may launch extra tasks or return a changed
// privilege for the axpy task to provoke fingerprint mismatches.
func syntheticCG(rt *Runtime, iters int, traced bool, mutate func(i int)) {
	sp := index.NewSpace("D", 64)
	scalar := index.NewSpace("S", 1)
	sol := region.New("sol", sp, "x")
	p := region.New("p", sp, "x")
	q := region.New("q", sp, "x")
	full := func(r *region.Region, priv region.Privilege) region.Ref {
		return region.Ref{Region: r.ID(), Field: "x", Subset: index.Span(0, 63), Priv: priv}
	}
	sref := func(r *region.Region, priv region.Privilege) region.Ref {
		return region.Ref{Region: r.ID(), Field: "v", Subset: index.Span(0, 0), Priv: priv}
	}

	// Pre-trace initialization, including the initial residual scalar the
	// first traced iteration reads (the rcStable→rcPrev upgrade case).
	rt.Launch(TaskSpec{Name: "init.sol", Refs: []region.Ref{full(sol, region.WriteDiscard)}})
	rt.Launch(TaskSpec{Name: "init.p", Refs: []region.Ref{full(p, region.WriteDiscard)}})
	res := region.New("res", scalar, "v")
	rt.Launch(TaskSpec{Name: "init.res", Refs: []region.Ref{
		full(p, region.ReadOnly), sref(res, region.WriteDiscard),
	}})

	for i := 0; i < iters; i++ {
		if traced {
			rt.BeginTrace("step")
		}
		rt.Launch(TaskSpec{Name: "matmul", Refs: []region.Ref{
			full(p, region.ReadOnly), full(q, region.WriteDiscard),
		}})
		s1 := region.New("dot", scalar, "v")
		rt.Launch(TaskSpec{Name: "dot", Refs: []region.Ref{
			full(p, region.ReadOnly), full(q, region.ReadOnly), sref(s1, region.WriteDiscard),
		}})
		rt.Launch(TaskSpec{Name: "axpy", Refs: []region.Ref{
			full(p, region.ReadOnly), sref(s1, region.ReadOnly), full(sol, region.ReadWrite),
		}})
		s2 := region.New("res", scalar, "v")
		rt.Launch(TaskSpec{Name: "update", Refs: []region.Ref{
			sref(res, region.ReadOnly), sref(s1, region.ReadOnly), sref(s2, region.WriteDiscard),
		}})
		res = s2
		if mutate != nil {
			mutate(i)
		}
		if traced {
			rt.EndTrace()
		}
	}
	rt.Drain()
}

// assertGraphsEqual fails unless both runtimes derived the same
// dependence structure (names, edges, edge payloads) for every task.
func assertGraphsEqual(t *testing.T, analyzed, traced *Runtime) {
	t.Helper()
	ga, gt := analyzed.Graph(), traced.Graph()
	if ga.Len() != gt.Len() {
		t.Fatalf("graph sizes differ: analyzed %d, traced %d", ga.Len(), gt.Len())
	}
	for i := range ga.Nodes {
		a, b := ga.Nodes[i], gt.Nodes[i]
		if a.Name != b.Name {
			t.Fatalf("node %d name: analyzed %q, traced %q", i, a.Name, b.Name)
		}
		if len(a.Deps) != len(b.Deps) {
			t.Fatalf("node %d (%s) deps: analyzed %v, traced %v", i, a.Name, a.Deps, b.Deps)
		}
		for j := range a.Deps {
			if a.Deps[j] != b.Deps[j] || a.DepBytes[j] != b.DepBytes[j] {
				t.Fatalf("node %d (%s) edge %d: analyzed %d(%dB), traced %d(%dB)",
					i, a.Name, j, a.Deps[j], a.DepBytes[j], b.Deps[j], b.DepBytes[j])
			}
		}
	}
}

func TestTraceReplayEquivalence(t *testing.T) {
	// A replayed instance must splice exactly the edges full analysis
	// would derive — same predecessors, same payload bytes — including
	// prev-instance edges through the residual scalar and ancient edges
	// to the pre-trace writer of p.
	analyzed, traced := New(), New()
	syntheticCG(analyzed, 8, false, nil)
	syntheticCG(traced, 8, true, nil)
	assertGraphsEqual(t, analyzed, traced)

	st := traced.Stats()
	// Iterations 1 and 2 record and calibrate; 3..8 replay all 4 tasks.
	if want := int64(6 * 4); st.TraceReplays != want {
		t.Errorf("TraceReplays = %d, want %d", st.TraceReplays, want)
	}
	if st.TraceHits != 6 || st.TraceMisses != 2 {
		t.Errorf("TraceHits/Misses = %d/%d, want 6/2", st.TraceHits, st.TraceMisses)
	}
	if st.TraceFallbacks != 0 {
		t.Errorf("TraceFallbacks = %d, want 0", st.TraceFallbacks)
	}
	if nodes := traced.Graph().Nodes; !nodes[len(nodes)-1].Traced {
		t.Error("final iteration's tasks should be trace-spliced")
	}
}

func TestTraceReplayZeroAnalysisScans(t *testing.T) {
	// Once a trace replays, iterations must perform no interference
	// analysis at all, even though every iteration creates fresh scratch
	// regions.
	rt := New()
	sp := index.NewSpace("D", 32)
	v := region.New("v", sp, "x")
	iter := func() {
		rt.BeginTrace("step")
		rt.Launch(TaskSpec{Name: "w", Refs: []region.Ref{
			{Region: v.ID(), Field: "x", Subset: index.Span(0, 31), Priv: region.ReadWrite},
		}})
		s := region.New("s", index.NewSpace("S", 1), "v")
		rt.Launch(TaskSpec{Name: "d", Refs: []region.Ref{
			{Region: v.ID(), Field: "x", Subset: index.Span(0, 31), Priv: region.ReadOnly},
			{Region: s.ID(), Field: "v", Subset: index.Span(0, 0), Priv: region.WriteDiscard},
		}})
		rt.EndTrace()
	}
	iter()
	iter()
	base := rt.Stats().AnalysisScans
	for i := 0; i < 10; i++ {
		iter()
	}
	rt.Drain()
	st := rt.Stats()
	if st.AnalysisScans != base {
		t.Fatalf("replayed iterations scanned %d history entries, want 0",
			st.AnalysisScans-base)
	}
	if st.TraceHits != 10 {
		t.Fatalf("TraceHits = %d, want 10", st.TraceHits)
	}
}

func TestTraceFallbackOnMismatch(t *testing.T) {
	// An instance that diverges from the calibrated template mid-stream
	// must fall back to full analysis and still derive correct edges; the
	// template is dropped and rebuilt by later instances.
	analyzed, traced := New(), New()
	mutate := func(rt *Runtime) func(int) {
		sp := index.NewSpace("E", 16)
		extra := region.New("extra", sp, "x")
		return func(i int) {
			if i == 5 {
				rt.Launch(TaskSpec{Name: "odd", Refs: []region.Ref{
					{Region: extra.ID(), Field: "x", Subset: index.Span(0, 15), Priv: region.ReadWrite},
				}})
			}
		}
	}
	syntheticCG(analyzed, 9, false, mutate(analyzed))
	syntheticCG(traced, 9, true, mutate(traced))
	assertGraphsEqual(t, analyzed, traced)

	st := traced.Stats()
	if st.TraceFallbacks != 1 {
		t.Errorf("TraceFallbacks = %d, want 1", st.TraceFallbacks)
	}
	// Iterations 0,1 record+calibrate; 2..4 replay; 5 splices its four
	// matching tasks, then the extra task falls back and drops the
	// template; 6,7 re-record and recalibrate; 8 replays again.
	if want := int64(3*4 + 4 + 4); st.TraceReplays != want {
		t.Errorf("TraceReplays = %d, want %d", st.TraceReplays, want)
	}
	if st.TraceHits != 4 {
		t.Errorf("TraceHits = %d, want 4", st.TraceHits)
	}
}

func TestTraceGapDemotesToAnalysis(t *testing.T) {
	// A foreign launch between two instances (a convergence check, a
	// checkpoint) invalidates offset splicing; the next instances must
	// silently re-record and recalibrate rather than replay stale edges.
	analyzed, traced := New(), New()
	run := func(rt *Runtime, traced bool) {
		sp := index.NewSpace("D", 32)
		v := region.New("v", sp, "x")
		foreign := region.New("f", sp, "x")
		w := func(r *region.Region, priv region.Privilege) region.Ref {
			return region.Ref{Region: r.ID(), Field: "x", Subset: index.Span(0, 31), Priv: priv}
		}
		rt.Launch(TaskSpec{Name: "init", Refs: []region.Ref{w(v, region.WriteDiscard)}})
		for i := 0; i < 8; i++ {
			if traced {
				rt.BeginTrace("step")
			}
			rt.Launch(TaskSpec{Name: "a", Refs: []region.Ref{w(v, region.ReadWrite)}})
			rt.Launch(TaskSpec{Name: "b", Refs: []region.Ref{w(v, region.ReadOnly)}})
			if traced {
				rt.EndTrace()
			}
			if i == 4 {
				rt.Launch(TaskSpec{Name: "foreign", Refs: []region.Ref{
					w(foreign, region.WriteDiscard), w(v, region.ReadOnly),
				}})
			}
		}
		rt.Drain()
	}
	run(analyzed, false)
	run(traced, true)
	assertGraphsEqual(t, analyzed, traced)

	st := traced.Stats()
	// Iterations 0,1 record+calibrate, 2..4 replay; the gap after 4
	// demotes 5 to record and 6 to calibrate; 7 replays.
	if st.TraceHits != 4 {
		t.Errorf("TraceHits = %d, want 4", st.TraceHits)
	}
	if st.TraceFallbacks != 0 {
		t.Errorf("TraceFallbacks = %d, want 0 (gaps demote before replay starts)", st.TraceFallbacks)
	}
}

func TestConcurrentLaunchersWithGraphSnapshots(t *testing.T) {
	// Concurrent launchers on overlapping regions while another goroutine
	// snapshots the graph: snapshots must always be a consistent prefix
	// (every node's edges final and pointing at smaller IDs). Run under
	// -race this also exercises the sharded history and node holdback.
	rt := New()
	sp := index.NewSpace("D", 256)
	shared := region.New("shared", sp, "x")
	const launchers, perLauncher = 6, 40

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			g := rt.Graph()
			for i, n := range g.Nodes {
				if n.ID != int64(i) {
					t.Errorf("snapshot node %d has ID %d", i, n.ID)
					return
				}
				for _, d := range n.Deps {
					if d >= n.ID {
						t.Errorf("snapshot node %d has forward edge to %d", n.ID, d)
						return
					}
				}
			}
			if g.Len() == launchers*perLauncher {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for l := 0; l < launchers; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for i := 0; i < perLauncher; i++ {
				lo := int64((l*perLauncher + i) % 64 * 4)
				priv := region.ReadOnly
				if i%3 == 0 {
					priv = region.ReadWrite
				}
				rt.Launch(TaskSpec{Name: "t", Refs: []region.Ref{
					{Region: shared.ID(), Field: "x", Subset: index.Span(lo, lo+3), Priv: priv},
				}})
			}
		}(l)
	}
	wg.Wait()
	rt.Drain()
	<-done

	g := rt.Graph()
	if g.Len() != launchers*perLauncher {
		t.Fatalf("graph has %d nodes, want %d", g.Len(), launchers*perLauncher)
	}
}

func TestLaunchAfterDrainedFailureRunsClean(t *testing.T) {
	// Poison flows only through tasks in flight. Once a failure has
	// completed (drained, surfaced via Err), tasks launched afterward —
	// even ones ordered after the failed task — run normally. Checkpoint
	// recovery (SolveResilient) depends on this: the restore task that
	// overwrites the damaged data is itself ordered after the failure.
	rt := New()
	sp := index.NewSpace("D", 8)
	v := region.New("v", sp, "x")
	w := region.Ref{Region: v.ID(), Field: "x", Subset: index.Span(0, 7), Priv: region.ReadWrite}
	rt.Launch(TaskSpec{Name: "boom", Refs: []region.Ref{w}, Run: func() float64 {
		panic("kernel fault")
	}})
	rt.Drain() // "boom" has failed, retired, and is visible via Err
	if rt.Err() == nil {
		t.Fatal("failure not surfaced")
	}
	fut := rt.Launch(TaskSpec{Name: "restore", Refs: []region.Ref{w}, Run: func() float64 {
		return 42
	}})
	rt.Drain()
	if v, err := fut.Result(); err != nil || v != 42 {
		t.Fatalf("post-recovery task = (%v, %v), want (42, nil)", v, err)
	}
	if got := rt.Stats().Poisoned; got != 0 {
		t.Fatalf("Poisoned = %d, want 0", got)
	}
}

func TestLaunchTimingSplit(t *testing.T) {
	rt := New()
	sp := index.NewSpace("D", 16)
	v := region.New("v", sp, "x")
	iter := func() {
		rt.BeginTrace("k")
		rt.Launch(TaskSpec{Name: "w", Refs: []region.Ref{
			{Region: v.ID(), Field: "x", Subset: index.Span(0, 15), Priv: region.ReadWrite},
		}})
		rt.EndTrace()
	}
	for i := 0; i < 5; i++ {
		iter()
	}
	rt.Drain()
	analyzed, spliced := rt.LaunchTiming()
	if analyzed.Count != 2 || spliced.Count != 3 {
		t.Fatalf("timing counts analyzed/spliced = %d/%d, want 2/3", analyzed.Count, spliced.Count)
	}
	if analyzed.Total <= 0 || spliced.Total <= 0 {
		t.Fatalf("timers did not accumulate: %v / %v", analyzed.Total, spliced.Total)
	}
}
