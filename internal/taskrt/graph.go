package taskrt

// Node is one task in a recorded task graph, carrying everything the
// discrete-event simulator needs: a processor assignment, a compute cost,
// dependence edges, and the bytes each edge must move.
type Node struct {
	// ID is the task's position in the graph (dense, starting at 0).
	ID int64
	// Name labels the task kind ("matmul", "axpy", "dot", ...).
	Name string
	// Phase is the solver-phase label active when the task was launched
	// ("cg.step", "gmres.arnoldi", ...), empty when untagged.
	Phase string
	// Proc is the simulated processor the mapper assigned.
	Proc int
	// Cost is the task's compute time in seconds on that processor.
	Cost float64
	// Deps lists the IDs of tasks that must finish first.
	Deps []int64
	// DepBytes[i] is the number of bytes task Deps[i] must deliver to
	// this task before it can start (0 for pure ordering edges).
	DepBytes []int64
	// Traced marks tasks replayed from a memoized trace, which carry a
	// lower launch overhead in the simulator.
	Traced bool
	// Host marks host-side future operations (scalar arithmetic): they
	// pay neither kernel-launch nor runtime-analysis overhead in the
	// simulator, only a small fixed cost.
	Host bool
}

// Graph is a recorded task graph, the exchange format between the runtime
// (or a hand-built bulk-synchronous schedule) and the simulator.
type Graph struct {
	Nodes []Node
}

// Add appends a node, assigning its ID, and returns the ID.
func (g *Graph) Add(n Node) int64 {
	n.ID = int64(len(g.Nodes))
	g.Nodes = append(g.Nodes, n)
	return n.ID
}

// Len returns the number of tasks in the graph.
func (g Graph) Len() int { return len(g.Nodes) }

// TotalCost returns the sum of all task compute costs — the serial
// execution time, ignoring communication.
func (g *Graph) TotalCost() float64 {
	var t float64
	for _, n := range g.Nodes {
		t += n.Cost
	}
	return t
}

// DepLists returns the dependence lists indexed by task ID — the shape
// the obs critical-path analyzer consumes. The inner slices share the
// nodes' storage; callers must not modify them.
func (g Graph) DepLists() [][]int64 {
	deps := make([][]int64, len(g.Nodes))
	for i, n := range g.Nodes {
		deps[i] = n.Deps
	}
	return deps
}

// CriticalPathCost returns the longest compute-cost path through the
// dependence graph — the best possible makespan on infinitely many
// processors with free communication.
func (g *Graph) CriticalPathCost() float64 {
	finish := make([]float64, len(g.Nodes))
	var best float64
	for i, n := range g.Nodes {
		var start float64
		for _, d := range n.Deps {
			if finish[d] > start {
				start = finish[d]
			}
		}
		finish[i] = start + n.Cost
		if finish[i] > best {
			best = finish[i]
		}
	}
	return best
}
