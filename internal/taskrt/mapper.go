package taskrt

// A Mapper assigns tasks to simulated processors, mirroring Legion's
// mapper interface. The runtime consults the mapper at every launch, so a
// mapper may change its answers over time — that is exactly how the
// dynamic load-balancing experiment of Section 6.3 retargets matrix tiles
// while the solver runs.
type Mapper interface {
	// SelectProc picks the processor for one point task. name identifies
	// the task kind and color is the task's index-launch color (or 0 for
	// single launches).
	SelectProc(name string, color int) int
}

// RoundRobinMapper spreads index-launch colors across processors,
// assigning color c to processor c mod NumProcs. With the canonical
// partitions of the stencil benchmarks (one piece per GPU), this is the
// paper's static block mapping.
type RoundRobinMapper struct {
	NumProcs int
}

// SelectProc implements Mapper.
func (m RoundRobinMapper) SelectProc(_ string, color int) int {
	if m.NumProcs <= 0 {
		return 0
	}
	return color % m.NumProcs
}

// FixedMapper sends every task to one processor. Useful in tests.
type FixedMapper struct {
	Proc int
}

// SelectProc implements Mapper.
func (m FixedMapper) SelectProc(string, int) int { return m.Proc }

// FuncMapper adapts a function to the Mapper interface.
type FuncMapper func(name string, color int) int

// SelectProc implements Mapper.
func (m FuncMapper) SelectProc(name string, color int) int { return m(name, color) }
