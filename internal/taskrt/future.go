package taskrt

import "sync"

// A Future is the eventual scalar result of a task, in the style of
// Legion futures. Solvers receive dot products as futures and block only
// when the value is actually needed, which lets independent vector work
// launched earlier keep running.
//
// A future can complete in an error state: its producing task failed
// permanently, or was cancelled because an upstream task failed (see
// ErrPoisoned). Value then returns NaN so legacy numeric consumers see an
// unmistakably invalid number; Err and Result expose the cause.
//
// Futures come from a process-wide free pool (the launch hot path must
// not allocate); a client that knows it holds the last reference may
// hand a completed future back with Recycle. Launches whose result is
// never read should instead set TaskSpec.Detached, which skips the
// future entirely.
type Future struct {
	mu   sync.Mutex
	cond sync.Cond // cond.L is &mu, set once at pool insertion
	done bool
	val  float64
	err  error
}

// futPool recycles Future storage. A future is one object including its
// condition variable (cond is embedded by value and wired to mu when
// the object is first built), so a pooled launch allocates nothing.
var futPool = sync.Pool{New: func() any {
	f := &Future{}
	f.cond.L = &f.mu
	return f
}}

func newFuture() *Future {
	return futPool.Get().(*Future)
}

// Recycle returns a completed future to the free pool. Callers must
// hold the only remaining reference: no other goroutine may be blocked
// in (or about to call) Value/Err/Result/Ready on it. Recycling is an
// optional optimization for high-rate launch loops; letting the garbage
// collector take the future is always safe.
func (f *Future) Recycle() {
	f.mu.Lock()
	done := f.done
	f.done = false
	f.val = 0
	f.err = nil
	f.mu.Unlock()
	if !done {
		panic("taskrt: Recycle of an unresolved future")
	}
	futPool.Put(f)
}

// resolve delivers the value (and error state) and wakes all waiters.
func (f *Future) resolve(v float64, err error) {
	f.mu.Lock()
	f.val = v
	f.err = err
	f.done = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// set delivers a successful value.
func (f *Future) set(v float64) { f.resolve(v, nil) }

// Value blocks until the producing task completes, then returns the
// result (NaN when the task failed or was poisoned).
func (f *Future) Value() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	for !f.done {
		f.cond.Wait()
	}
	return f.val
}

// Err blocks until the producing task completes, then returns its error
// state: nil on success, the task's failure on permanent failure, or an
// ErrPoisoned-wrapping error when the task was cancelled because an
// upstream task failed.
func (f *Future) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for !f.done {
		f.cond.Wait()
	}
	return f.err
}

// Result blocks until the producing task completes, then returns both the
// value and the error state.
func (f *Future) Result() (float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for !f.done {
		f.cond.Wait()
	}
	return f.val, f.err
}

// Ready reports whether the value is already available.
func (f *Future) Ready() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// Resolved returns an already-completed future holding v. It is useful
// for scalar arithmetic that needs no task.
func Resolved(v float64) *Future {
	f := newFuture()
	f.done = true
	f.val = v
	return f
}
