package taskrt

import "sync"

// A Future is the eventual scalar result of a task, in the style of
// Legion futures. Solvers receive dot products as futures and block only
// when the value is actually needed, which lets independent vector work
// launched earlier keep running.
type Future struct {
	mu   sync.Mutex
	cond *sync.Cond
	done bool
	val  float64
}

func newFuture() *Future {
	f := &Future{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// set delivers the value and wakes all waiters.
func (f *Future) set(v float64) {
	f.mu.Lock()
	f.val = v
	f.done = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// Value blocks until the producing task completes, then returns the
// result.
func (f *Future) Value() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	for !f.done {
		f.cond.Wait()
	}
	return f.val
}

// Ready reports whether the value is already available.
func (f *Future) Ready() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// Resolved returns an already-completed future holding v. It is useful
// for scalar arithmetic that needs no task.
func Resolved(v float64) *Future {
	f := newFuture()
	f.done = true
	f.val = v
	return f
}
