package sim

import "kdrsolvers/internal/taskrt"

// Window extracts the tasks [lo, len) of a cumulative graph as a
// standalone graph suitable for per-iteration simulation. Dependences on
// tasks before the window are preserved as zero-cost ghost producers on
// their original processors, so cross-window data transfers (e.g. the
// halo reads of the first matmul of an iteration) still start from the
// right place and are still charged.
func Window(g taskrt.Graph, lo int) taskrt.Graph {
	var out taskrt.Graph
	ghost := map[int64]int64{} // original id -> ghost id in out
	// First pass: create ghosts for external dependences in first-seen
	// order so IDs stay topological.
	for _, n := range g.Nodes[lo:] {
		for _, d := range n.Deps {
			if d < int64(lo) {
				if _, ok := ghost[d]; !ok {
					ghost[d] = out.Add(taskrt.Node{
						Name: "ghost:" + g.Nodes[d].Name,
						Proc: g.Nodes[d].Proc,
						Host: true,
					})
				}
			}
		}
	}
	base := int64(out.Len()) - int64(lo)
	for _, n := range g.Nodes[lo:] {
		deps := make([]int64, len(n.Deps))
		for i, d := range n.Deps {
			if d < int64(lo) {
				deps[i] = ghost[d]
			} else {
				deps[i] = d + base
			}
		}
		bytes := make([]int64, len(n.DepBytes))
		copy(bytes, n.DepBytes)
		out.Add(taskrt.Node{
			Name: n.Name, Proc: n.Proc, Cost: n.Cost,
			Deps: deps, DepBytes: bytes, Traced: n.Traced,
		})
	}
	return out
}
