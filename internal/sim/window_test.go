package sim

import (
	"testing"

	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/taskrt"
)

func TestWindowNoExternalDeps(t *testing.T) {
	var g taskrt.Graph
	a := g.Add(taskrt.Node{Name: "a", Proc: 0, Cost: 1})
	g.Add(taskrt.Node{Name: "b", Proc: 1, Cost: 2, Deps: []int64{a}, DepBytes: []int64{8}})
	w := Window(g, 0)
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	if err := Validate(w); err != nil {
		t.Fatal(err)
	}
	// Identical graph; identical simulation.
	m := machine.Lassen(1)
	if Simulate(w, m, Options{}).Makespan != Simulate(g, m, Options{}).Makespan {
		t.Fatal("full window changed the schedule")
	}
}

func TestWindowGhostsExternalProducers(t *testing.T) {
	var g taskrt.Graph
	a := g.Add(taskrt.Node{Name: "produce", Proc: 0, Cost: 5})
	b := g.Add(taskrt.Node{Name: "mid", Proc: 1, Cost: 1, Deps: []int64{a}, DepBytes: []int64{0}})
	g.Add(taskrt.Node{Name: "consume", Proc: 4, Cost: 1,
		Deps: []int64{a, b}, DepBytes: []int64{1e9, 0}})

	w := Window(g, 2) // keep only "consume"
	if err := Validate(w); err != nil {
		t.Fatal(err)
	}
	// Two ghosts (for a and b) plus the window task.
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	ghosts := 0
	for _, n := range w.Nodes {
		if n.Host {
			ghosts++
			if n.Cost != 0 {
				t.Fatal("ghosts must be free")
			}
		}
	}
	if ghosts != 2 {
		t.Fatalf("ghosts = %d, want 2", ghosts)
	}
	// The consumer still pays the cross-node transfer from the ghost's
	// processor: 1e9 bytes at 21 GB/s from node 0 to node 1.
	m := machine.Lassen(2)
	res := Simulate(w, m, Options{})
	if res.CommBytes != 1e9 {
		t.Fatalf("CommBytes = %d", res.CommBytes)
	}
	wantMin := 1e9 / m.NetBandwidth
	if res.Makespan < wantMin {
		t.Fatalf("Makespan %g does not include the ghost transfer (>= %g)", res.Makespan, wantMin)
	}
}

func TestWindowPreservesAttributes(t *testing.T) {
	var g taskrt.Graph
	a := g.Add(taskrt.Node{Name: "a", Proc: 3, Cost: 1, Traced: true})
	g.Add(taskrt.Node{Name: "b", Proc: 2, Cost: 2, Deps: []int64{a}, DepBytes: []int64{4}, Traced: true})
	w := Window(g, 1)
	n := w.Nodes[w.Len()-1]
	if n.Name != "b" || n.Proc != 2 || n.Cost != 2 || !n.Traced {
		t.Fatalf("attributes lost: %+v", n)
	}
	if len(n.Deps) != 1 || n.DepBytes[0] != 4 {
		t.Fatalf("edge lost: %+v", n)
	}
}

func TestWindowSharedGhost(t *testing.T) {
	// Two window tasks depending on the same external producer share one
	// ghost.
	var g taskrt.Graph
	a := g.Add(taskrt.Node{Name: "a", Proc: 0, Cost: 1})
	g.Add(taskrt.Node{Name: "b", Proc: 1, Cost: 1, Deps: []int64{a}, DepBytes: []int64{8}})
	g.Add(taskrt.Node{Name: "c", Proc: 2, Cost: 1, Deps: []int64{a}, DepBytes: []int64{8}})
	w := Window(g, 1)
	if w.Len() != 3 { // 1 ghost + 2 tasks
		t.Fatalf("Len = %d, want 3", w.Len())
	}
}
