package sim

import (
	"math"
	"testing"

	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/taskrt"
)

// testMachine returns a small machine with clean round numbers for
// hand-computable schedules: 2 nodes x 2 procs, 1e9 B/s everywhere,
// zero latency and launch cost.
func testMachine() machine.Machine {
	return machine.Machine{
		Nodes: 2, GPUsPerNode: 2,
		MemBandwidth:   1e9,
		IntraBandwidth: 1e9,
		NetBandwidth:   1e9,
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestSimulateSerialChain(t *testing.T) {
	var g taskrt.Graph
	a := g.Add(taskrt.Node{Name: "a", Proc: 0, Cost: 1})
	b := g.Add(taskrt.Node{Name: "b", Proc: 0, Cost: 2, Deps: []int64{a}, DepBytes: []int64{0}})
	g.Add(taskrt.Node{Name: "c", Proc: 0, Cost: 3, Deps: []int64{b}, DepBytes: []int64{0}})
	res := Simulate(g, testMachine(), Options{})
	if !approx(res.Makespan, 6) {
		t.Fatalf("Makespan = %g, want 6", res.Makespan)
	}
	if !approx(res.ProcBusy[0], 6) {
		t.Fatalf("ProcBusy = %v", res.ProcBusy)
	}
}

func TestSimulateParallelTasks(t *testing.T) {
	var g taskrt.Graph
	g.Add(taskrt.Node{Name: "a", Proc: 0, Cost: 5})
	g.Add(taskrt.Node{Name: "b", Proc: 1, Cost: 5})
	g.Add(taskrt.Node{Name: "c", Proc: 2, Cost: 5})
	res := Simulate(g, testMachine(), Options{})
	if !approx(res.Makespan, 5) {
		t.Fatalf("independent tasks on distinct procs: Makespan = %g, want 5", res.Makespan)
	}
	// Same tasks on one proc serialize.
	for i := range g.Nodes {
		g.Nodes[i].Proc = 0
	}
	res = Simulate(g, testMachine(), Options{})
	if !approx(res.Makespan, 15) {
		t.Fatalf("serialized: Makespan = %g, want 15", res.Makespan)
	}
}

func TestSimulateCommunicationEdge(t *testing.T) {
	m := testMachine()
	var g taskrt.Graph
	a := g.Add(taskrt.Node{Name: "a", Proc: 0, Cost: 1})
	// Consumer on the other node needs 1e9 bytes => 1 second of transfer.
	g.Add(taskrt.Node{Name: "b", Proc: 2, Cost: 1, Deps: []int64{a}, DepBytes: []int64{1e9}})
	res := Simulate(g, m, Options{})
	if !approx(res.Makespan, 3) {
		t.Fatalf("Makespan = %g, want 1 + 1 + 1 = 3", res.Makespan)
	}
	if res.CommBytes != 1e9 || res.IntraBytes != 0 {
		t.Fatalf("CommBytes = %d, IntraBytes = %d", res.CommBytes, res.IntraBytes)
	}
	// Same-node consumer uses the intra link instead.
	g.Nodes[1].Proc = 1
	res = Simulate(g, m, Options{})
	if !approx(res.Makespan, 3) {
		t.Fatalf("intra Makespan = %g, want 3", res.Makespan)
	}
	if res.IntraBytes != 1e9 || res.CommBytes != 0 {
		t.Fatalf("IntraBytes = %d", res.IntraBytes)
	}
	// Same-proc consumer moves nothing.
	g.Nodes[1].Proc = 0
	res = Simulate(g, m, Options{})
	if !approx(res.Makespan, 2) || res.IntraBytes != 0 {
		t.Fatalf("same-proc Makespan = %g, bytes = %d", res.Makespan, res.IntraBytes)
	}
}

func TestSimulateOverlapHidesCommunication(t *testing.T) {
	// The paper's P1 claim in miniature: a transfer to another node can
	// hide under independent local compute in the task model, but not in
	// the BSP model.
	m := testMachine()
	var g taskrt.Graph
	a := g.Add(taskrt.Node{Name: "produce", Proc: 0, Cost: 1})
	// Local busy work on the destination proc, independent of the data.
	g.Add(taskrt.Node{Name: "local", Proc: 2, Cost: 2})
	// Consumer needs 1 second of data transfer from node 0 to node 1.
	g.Add(taskrt.Node{Name: "consume", Proc: 2, Cost: 1, Deps: []int64{a}, DepBytes: []int64{1e9}})

	task := Simulate(g, m, Options{})
	// Transfer (done at t=3) overlaps the local task (done at t=2):
	// consume starts at max(2, 1+1) = 2... transfer starts at 1, arrives 2.
	if !approx(task.Makespan, 3) {
		t.Fatalf("task model Makespan = %g, want 3", task.Makespan)
	}

	bsp := SimulateBSP(g, m, Options{})
	// BSP: level 0 compute = max(1 on proc0, 2 on proc2) = 2, then level 1
	// comm = 1, then consume = 1: total 4.
	if !approx(bsp.Makespan, 4) {
		t.Fatalf("BSP Makespan = %g, want 4", bsp.Makespan)
	}
	if bsp.Makespan <= task.Makespan {
		t.Fatal("BSP must not beat the overlapping schedule here")
	}
}

func TestNetworkChannelSerialization(t *testing.T) {
	// Two transfers leaving the same node serialize on its send channel.
	m := testMachine()
	var g taskrt.Graph
	a := g.Add(taskrt.Node{Name: "a", Proc: 0, Cost: 0})
	g.Add(taskrt.Node{Name: "b", Proc: 2, Cost: 0, Deps: []int64{a}, DepBytes: []int64{1e9}})
	g.Add(taskrt.Node{Name: "c", Proc: 3, Cost: 0, Deps: []int64{a}, DepBytes: []int64{1e9}})
	res := Simulate(g, m, Options{})
	if !approx(res.Makespan, 2) {
		t.Fatalf("Makespan = %g, want 2 (serialized sends)", res.Makespan)
	}
}

func TestOverheadAndTracing(t *testing.T) {
	m := testMachine()
	var g taskrt.Graph
	g.Add(taskrt.Node{Name: "a", Proc: 0, Cost: 1})
	g.Add(taskrt.Node{Name: "b", Proc: 0, Cost: 1, Traced: true})
	res := Simulate(g, m, Options{TaskOverhead: 10, TracedOverhead: 1})
	// a: 10 + 1, b: 1 + 1 => 13.
	if !approx(res.Makespan, 13) {
		t.Fatalf("Makespan = %g, want 13", res.Makespan)
	}
	// Kernel launch cost applies to every task.
	m.KernelLaunch = 0.5
	res = Simulate(g, m, Options{})
	if !approx(res.Makespan, 3) {
		t.Fatalf("Makespan with launch = %g, want 3", res.Makespan)
	}
}

func TestNodeSlowdown(t *testing.T) {
	m := testMachine()
	var g taskrt.Graph
	g.Add(taskrt.Node{Name: "a", Proc: 0, Cost: 1})
	g.Add(taskrt.Node{Name: "b", Proc: 2, Cost: 1})
	res := Simulate(g, m, Options{NodeSlowdown: []float64{2, 1}})
	if !approx(res.Makespan, 2) {
		t.Fatalf("Makespan = %g, want 2 (node 0 slowed 2x)", res.Makespan)
	}
	if !approx(res.NodeBusy[0], 2) || !approx(res.NodeBusy[1], 1) {
		t.Fatalf("NodeBusy = %v", res.NodeBusy)
	}
	// Slowdowns below 1 and missing entries are ignored.
	res = Simulate(g, m, Options{NodeSlowdown: []float64{0.5}})
	if !approx(res.Makespan, 1) {
		t.Fatalf("Makespan = %g, want 1", res.Makespan)
	}
}

func TestBSPMatchesSerialOnOneProc(t *testing.T) {
	// With everything on one processor and no communication, BSP and task
	// scheduling agree with the serial sum.
	var g taskrt.Graph
	prev := int64(-1)
	for i := 0; i < 5; i++ {
		n := taskrt.Node{Name: "t", Proc: 0, Cost: 1}
		if prev >= 0 {
			n.Deps = []int64{prev}
			n.DepBytes = []int64{0}
		}
		prev = g.Add(n)
	}
	m := testMachine()
	taskRes := Simulate(g, m, Options{})
	bspRes := SimulateBSP(g, m, Options{})
	if !approx(taskRes.Makespan, 5) || !approx(bspRes.Makespan, 5) {
		t.Fatalf("task = %g, bsp = %g, want 5", taskRes.Makespan, bspRes.Makespan)
	}
}

func TestValidate(t *testing.T) {
	var g taskrt.Graph
	a := g.Add(taskrt.Node{Name: "a"})
	g.Add(taskrt.Node{Name: "b", Deps: []int64{a}, DepBytes: []int64{0}})
	if err := Validate(g); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	bad := taskrt.Graph{Nodes: []taskrt.Node{{ID: 0, Deps: []int64{0}, DepBytes: []int64{0}}}}
	if err := Validate(bad); err == nil {
		t.Fatal("self-dependence accepted")
	}
	bad = taskrt.Graph{Nodes: []taskrt.Node{{ID: 0, Deps: []int64{1}}}}
	if err := Validate(bad); err == nil {
		t.Fatal("mismatched dep bytes accepted")
	}
}

func TestLatencyAccounting(t *testing.T) {
	m := testMachine()
	m.NetLatency = 0.25
	var g taskrt.Graph
	a := g.Add(taskrt.Node{Name: "a", Proc: 0, Cost: 0})
	g.Add(taskrt.Node{Name: "b", Proc: 2, Cost: 0, Deps: []int64{a}, DepBytes: []int64{1e9}})
	res := Simulate(g, m, Options{})
	if !approx(res.Makespan, 1.25) {
		t.Fatalf("Makespan = %g, want 1.25", res.Makespan)
	}
}

func TestBusyByNameAttribution(t *testing.T) {
	var g taskrt.Graph
	g.Add(taskrt.Node{Name: "matmul", Proc: 0, Cost: 3})
	g.Add(taskrt.Node{Name: "matmul", Proc: 1, Cost: 2})
	g.Add(taskrt.Node{Name: "axpy", Proc: 0, Cost: 1})
	res := Simulate(g, testMachine(), Options{})
	if !approx(res.BusyByName["matmul"], 5) {
		t.Fatalf("matmul busy = %g", res.BusyByName["matmul"])
	}
	if !approx(res.BusyByName["axpy"], 1) {
		t.Fatalf("axpy busy = %g", res.BusyByName["axpy"])
	}
	// Attribution sums to total proc busy.
	var total, byName float64
	for _, b := range res.ProcBusy {
		total += b
	}
	for _, b := range res.BusyByName {
		byName += b
	}
	if !approx(total, byName) {
		t.Fatalf("attribution mismatch: %g vs %g", total, byName)
	}
}
