package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"kdrsolvers/internal/obs"
)

// CompareRow relates one task name's measured time on the local runtime
// to the machine model's prediction for the same graph.
type CompareRow struct {
	Name      string
	RealCount int     // tasks observed on the real runtime
	RealTotal float64 // measured busy seconds
	SimCount  int     // tasks in the simulated schedule (0 if spans were not recorded)
	SimTotal  float64 // simulated busy seconds (overheads included)
	Ratio     float64 // SimTotal / RealTotal; 0 when RealTotal is 0
}

// Comparison is a per-task-name real-vs-simulated report. The absolute
// numbers are not expected to agree — the model is a 4-GPU Lassen node,
// not this host — but the relative weight of each task name should track,
// and large mismatches flag either a miscalibrated cost model or a task
// whose local implementation is unrepresentative.
type Comparison struct {
	Rows        []CompareRow
	RealWall    float64 // measured wall time spanned by the real spans
	RealBusy    float64 // sum of measured task durations
	SimMakespan float64 // simulated end-to-end time
	SimBusy     float64 // sum of simulated task costs
}

// Compare aggregates measured spans (from an obs.Recorder attached to the
// runtime) against a simulation of the same recorded graph. Task names
// present on only one side still get a row, with the other side zero.
func Compare(real []obs.Span, simRes Result) Comparison {
	type agg struct {
		realCount int
		realTotal float64
		simCount  int
		simTotal  float64
	}
	byName := make(map[string]*agg)
	get := func(name string) *agg {
		a := byName[name]
		if a == nil {
			a = &agg{}
			byName[name] = a
		}
		return a
	}

	var c Comparison
	var minLaunch, maxEnd float64
	for i, s := range real {
		a := get(s.Name)
		a.realCount++
		// Clamp pathological spans: a poisoned task records a zero-width
		// span, and a clock hiccup can yield a negative or NaN duration.
		// Folding either into the totals would NaN-poison every aggregate
		// (RealBusy, the row ratio, BusyRatio) for one bad span.
		d := s.Duration()
		if math.IsNaN(d) || d < 0 {
			d = 0
		}
		a.realTotal += d
		c.RealBusy += d
		if i == 0 || s.Launch < minLaunch {
			minLaunch = s.Launch
		}
		if s.End > maxEnd {
			maxEnd = s.End
		}
	}
	if len(real) > 0 {
		c.RealWall = maxEnd - minLaunch
	}

	for name, busy := range simRes.BusyByName {
		get(name).simTotal = busy
		c.SimBusy += busy
	}
	for _, s := range simRes.Spans {
		get(s.Name).simCount++
	}
	c.SimMakespan = simRes.Makespan

	for name, a := range byName {
		row := CompareRow{
			Name:      name,
			RealCount: a.realCount,
			RealTotal: a.realTotal,
			SimCount:  a.simCount,
			SimTotal:  a.simTotal,
		}
		// A span class whose every instance measured zero duration (all
		// poisoned, or sub-resolution) has no meaningful ratio: leave it 0
		// rather than dividing to ±Inf/NaN.
		if q := a.simTotal / a.realTotal; a.realTotal > 0 && !math.IsNaN(q) && !math.IsInf(q, 0) {
			row.Ratio = q
		}
		c.Rows = append(c.Rows, row)
	}
	sort.Slice(c.Rows, func(i, j int) bool {
		if c.Rows[i].RealTotal != c.Rows[j].RealTotal {
			return c.Rows[i].RealTotal > c.Rows[j].RealTotal
		}
		return c.Rows[i].Name < c.Rows[j].Name
	})
	return c
}

// BusyRatio returns the aggregate SimBusy / RealBusy, the one-number
// calibration check, or 0 when the measured side is empty or the
// quotient is not finite.
func (c Comparison) BusyRatio() float64 {
	q := c.SimBusy / c.RealBusy
	if c.RealBusy <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return 0
	}
	return q
}

// String renders the comparison as a fixed-width table.
func (c Comparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "real wall %.6fs (busy %.6fs)  |  simulated makespan %.6fs (busy %.6fs)\n",
		c.RealWall, c.RealBusy, c.SimMakespan, c.SimBusy)
	fmt.Fprintf(&b, "%-24s %8s %12s %8s %12s %8s\n",
		"task", "real#", "real(s)", "sim#", "sim(s)", "sim/real")
	for _, r := range c.Rows {
		ratio := "-"
		if r.Ratio > 0 && !math.IsInf(r.Ratio, 0) {
			ratio = fmt.Sprintf("%.3f", r.Ratio)
		}
		fmt.Fprintf(&b, "%-24s %8d %12.6f %8d %12.6f %8s\n",
			r.Name, r.RealCount, r.RealTotal, r.SimCount, r.SimTotal, ratio)
	}
	return b.String()
}
