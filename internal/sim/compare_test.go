package sim

import (
	"math"
	"strings"
	"testing"

	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/taskrt"
)

func TestSimulateRecordSpans(t *testing.T) {
	var g taskrt.Graph
	a := g.Add(taskrt.Node{Name: "a", Phase: "init", Proc: 0, Cost: 1})
	b := g.Add(taskrt.Node{Name: "b", Phase: "step", Proc: 0, Cost: 2, Deps: []int64{a}, DepBytes: []int64{0}})
	g.Add(taskrt.Node{Name: "c", Phase: "step", Proc: 0, Cost: 3, Deps: []int64{b}, DepBytes: []int64{0}})

	res := Simulate(g, testMachine(), Options{RecordSpans: true})
	if len(res.Spans) != 3 {
		t.Fatalf("len(Spans) = %d, want 3", len(res.Spans))
	}
	// The serial chain runs back to back: [0,1), [1,3), [3,6).
	wantStart := []float64{0, 1, 3}
	wantEnd := []float64{1, 3, 6}
	for i, s := range res.Spans {
		if s.ID != int64(i) {
			t.Fatalf("span %d has ID %d", i, s.ID)
		}
		if !approx(s.Start, wantStart[i]) || !approx(s.End, wantEnd[i]) {
			t.Fatalf("span %d = [%g, %g), want [%g, %g)", i, s.Start, s.End, wantStart[i], wantEnd[i])
		}
		if s.Phase != g.Nodes[i].Phase {
			t.Fatalf("span %d phase %q, want %q", i, s.Phase, g.Nodes[i].Phase)
		}
		// Chain with same-proc zero-byte edges: data arrives the moment the
		// producer finishes, so nothing waits in a queue.
		if !approx(s.QueueLatency(), 0) {
			t.Fatalf("span %d queue latency %g, want 0", i, s.QueueLatency())
		}
	}

	// The simulated spans must feed the critical-path analyzer directly.
	rep := obs.Analyze(res.Spans, g.DepLists())
	if !approx(rep.CriticalPathTime, 6) {
		t.Fatalf("CriticalPathTime = %g, want 6", rep.CriticalPathTime)
	}

	// Without the option, no spans are allocated.
	res = Simulate(g, testMachine(), Options{})
	if res.Spans != nil {
		t.Fatalf("Spans recorded without RecordSpans: %v", res.Spans)
	}
}

func TestCompare(t *testing.T) {
	var g taskrt.Graph
	a := g.Add(taskrt.Node{Name: "axpy", Proc: 0, Cost: 1})
	g.Add(taskrt.Node{Name: "dot", Proc: 0, Cost: 2, Deps: []int64{a}, DepBytes: []int64{0}})
	simRes := Simulate(g, testMachine(), Options{RecordSpans: true})

	real := []obs.Span{
		{ID: 0, Name: "axpy", Launch: 0, Start: 0, End: 0.5},
		{ID: 1, Name: "dot", Launch: 0.5, Start: 0.5, End: 1.5},
		{ID: 2, Name: "axpy", Launch: 1.5, Start: 1.5, End: 2.0},
	}
	c := Compare(real, simRes)

	if !approx(c.RealWall, 2.0) || !approx(c.RealBusy, 2.0) {
		t.Fatalf("RealWall = %g, RealBusy = %g, want 2, 2", c.RealWall, c.RealBusy)
	}
	if !approx(c.SimMakespan, 3) || !approx(c.SimBusy, 3) {
		t.Fatalf("SimMakespan = %g, SimBusy = %g, want 3, 3", c.SimMakespan, c.SimBusy)
	}
	if len(c.Rows) != 2 {
		t.Fatalf("Rows = %+v, want 2 rows", c.Rows)
	}
	// Both names have a real total of 1.0 (axpy: 0.5+0.5, dot: 1.0), so
	// the descending-total sort falls through to the name tiebreak.
	r0, r1 := c.Rows[0], c.Rows[1]
	if r0.Name != "axpy" || r1.Name != "dot" {
		t.Fatalf("row order %q, %q, want axpy, dot", r0.Name, r1.Name)
	}
	if r0.RealCount != 2 || !approx(r0.RealTotal, 1.0) || r0.SimCount != 1 || !approx(r0.SimTotal, 1) {
		t.Fatalf("axpy row = %+v", r0)
	}
	if r1.RealCount != 1 || !approx(r1.RealTotal, 1.0) || r1.SimCount != 1 || !approx(r1.SimTotal, 2) {
		t.Fatalf("dot row = %+v", r1)
	}
	if !approx(r0.Ratio, 1.0) || !approx(r1.Ratio, 2.0) {
		t.Fatalf("ratios = %g, %g, want 1, 2", r0.Ratio, r1.Ratio)
	}

	out := c.String()
	for _, want := range []string{"axpy", "dot", "sim/real"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}

// TestCompareZeroDurationClass is the divide-by-zero regression: a span
// class whose only instances are zero-width (a poisoned task's record)
// or corrupt (NaN/negative durations from a clock hiccup) must keep every
// aggregate finite — no NaN rows, no Inf ratios, a renderable table.
func TestCompareZeroDurationClass(t *testing.T) {
	var g taskrt.Graph
	a := g.Add(taskrt.Node{Name: "poisoned", Proc: 0, Cost: 1})
	g.Add(taskrt.Node{Name: "dot", Proc: 0, Cost: 2, Deps: []int64{a}, DepBytes: []int64{0}})
	simRes := Simulate(g, testMachine(), Options{RecordSpans: true})

	nan := math.NaN()
	real := []obs.Span{
		// Zero-width: a poisoned task records Start == End.
		{ID: 0, Name: "poisoned", Launch: 0, Start: 0.5, End: 0.5},
		// Corrupt clocks: NaN and negative durations must clamp to zero.
		{ID: 1, Name: "poisoned", Launch: 0, Start: nan, End: nan},
		{ID: 2, Name: "poisoned", Launch: 0, Start: 1.0, End: 0.25},
		{ID: 3, Name: "dot", Launch: 0, Start: 0, End: 1},
	}
	c := Compare(real, simRes)

	if math.IsNaN(c.RealBusy) || c.RealBusy != 1 {
		t.Fatalf("RealBusy = %g, want 1 (clamped)", c.RealBusy)
	}
	for _, r := range c.Rows {
		if math.IsNaN(r.RealTotal) || math.IsNaN(r.Ratio) || math.IsInf(r.Ratio, 0) {
			t.Fatalf("non-finite aggregate in row %+v", r)
		}
		if r.Name == "poisoned" && r.Ratio != 0 {
			t.Fatalf("zero-measured class has ratio %g, want 0", r.Ratio)
		}
	}
	if br := c.BusyRatio(); math.IsNaN(br) || math.IsInf(br, 0) || br <= 0 {
		t.Fatalf("BusyRatio = %g, want finite positive", br)
	}
	if out := c.String(); strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("String() leaked a non-finite value:\n%s", out)
	}

	// All-zero measured side: BusyRatio must degrade to 0, not Inf.
	c = Compare([]obs.Span{{ID: 0, Name: "poisoned", Start: 1, End: 1}}, simRes)
	if br := c.BusyRatio(); br != 0 {
		t.Fatalf("BusyRatio over zero busy = %g, want 0", br)
	}
}

func TestCompareOneSidedNames(t *testing.T) {
	var g taskrt.Graph
	g.Add(taskrt.Node{Name: "only-sim", Proc: 0, Cost: 1})
	simRes := Simulate(g, testMachine(), Options{})
	real := []obs.Span{{ID: 0, Name: "only-real", Start: 0, End: 1}}
	c := Compare(real, simRes)
	if len(c.Rows) != 2 {
		t.Fatalf("Rows = %+v, want 2 rows", c.Rows)
	}
	for _, r := range c.Rows {
		switch r.Name {
		case "only-real":
			if r.SimTotal != 0 || r.RealCount != 1 {
				t.Fatalf("only-real row = %+v", r)
			}
		case "only-sim":
			if r.RealTotal != 0 || r.Ratio != 0 {
				t.Fatalf("only-sim row = %+v", r)
			}
		default:
			t.Fatalf("unexpected row %+v", r)
		}
	}
}
