// Package sim is a discrete-event simulator that replays a recorded task
// graph against a machine model and reports the schedule's makespan.
//
// The reproduction cannot time 1,024 GPUs, so per the substitution rule
// the experiments measure simulated time instead: the runtime records the
// real dependence graph of the real computation (package taskrt), and this
// package schedules that graph on the modeled cluster — finite-bandwidth
// accelerators, serialized per-node network channels, per-task launch
// overheads. Because the graph is exact, the properties the paper's
// results hinge on (which communication hides under which computation,
// how much fixed overhead each iteration pays) transfer to the model.
//
// Two schedulers are provided. Simulate performs dependence-driven list
// scheduling with communication overlap — the task-oriented execution
// model of Legion and KDRSolvers. SimulateBSP runs the same graph
// bulk-synchronously — level by level with barriers, communication not
// overlapped across levels — which models the MPI execution style of the
// PETSc/Trilinos baselines and doubles as the "overlap off" ablation.
package sim

import (
	"fmt"

	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/taskrt"
)

// Options tunes the simulated runtime system.
type Options struct {
	// TaskOverhead is the per-task launch cost of the dynamic runtime
	// (dependence analysis, mapping, deferred-execution bookkeeping).
	TaskOverhead float64
	// TracedOverhead replaces TaskOverhead for tasks inside a memoized
	// trace (dynamic tracing skips the analysis).
	TracedOverhead float64
	// NodeSlowdown optionally scales compute costs per node (≥ 1), the
	// Figure 10 background-load mechanism. nil means no slowdown.
	NodeSlowdown []float64

	// RecordSpans fills Result.Spans with one obs.Span per task on the
	// simulated timeline (time zero = schedule start), so the critical-path
	// analyzer and Chrome-trace exporter work on simulated schedules
	// exactly as on real ones.
	RecordSpans bool

	// barriers switches the scheduler to bulk-synchronous mode; set by
	// SimulateBSP.
	barriers bool
}

// hostOpCost is the fixed simulated cost of a host-side future operation
// (scalar arithmetic between tasks).
const hostOpCost = 5e-7

// Result reports a simulated schedule.
type Result struct {
	// Makespan is the end-to-end simulated time in seconds.
	Makespan float64
	// ProcBusy is the per-processor compute time (including overheads).
	ProcBusy []float64
	// NodeBusy is the per-node compute time, summed over the node's
	// processors.
	NodeBusy []float64
	// CommBytes is the total bytes moved between nodes.
	CommBytes int64
	// IntraBytes is the total bytes moved within nodes.
	IntraBytes int64
	// BusyByName attributes total compute time (including overheads) to
	// task names — the simulator's profile view.
	BusyByName map[string]float64
	// Spans is the simulated schedule as observability spans, indexed by
	// task ID; only filled when Options.RecordSpans is set. Launch is the
	// time the task's last input arrived, so QueueLatency is the time
	// spent waiting for a free processor.
	Spans []obs.Span
}

// slowdown returns the compute multiplier for a node.
func (o Options) slowdown(node int) float64 {
	if o.NodeSlowdown == nil || node >= len(o.NodeSlowdown) {
		return 1
	}
	if s := o.NodeSlowdown[node]; s > 1 {
		return s
	}
	return 1
}

// Simulate schedules the graph with dependence-driven overlap as a
// work-conserving discrete-event simulation: a processor runs any task
// whose inputs have arrived (ready tasks are served in ready-time order,
// ties by launch order), and transfers start eagerly the moment their
// producer finishes, queueing on per-node network channels. This is the
// execution model of a task-based runtime like Legion: waiting for one
// task's data never idles the processor while other work is ready.
func Simulate(g taskrt.Graph, m machine.Machine, opt Options) Result {
	nprocs := m.NumProcs()
	sendFree := make([]float64, m.Nodes)
	recvFree := make([]float64, m.Nodes)
	intraFree := make([]float64, m.Nodes)
	res := Result{
		ProcBusy:   make([]float64, nprocs),
		NodeBusy:   make([]float64, m.Nodes),
		BusyByName: make(map[string]float64),
	}
	if opt.RecordSpans {
		res.Spans = make([]obs.Span, g.Len())
	}

	// Per-task state.
	type taskState struct {
		pendingArrivals int     // edges whose data has not arrived
		ready           float64 // time the last input arrived
	}
	st := make([]taskState, g.Len())
	succs := make([][]int32, g.Len())     // consumers of each task
	succBytes := make([][]int64, g.Len()) // bytes owed to each consumer
	for i, n := range g.Nodes {
		st[i].pendingArrivals = len(n.Deps)
		for di, d := range n.Deps {
			succs[d] = append(succs[d], int32(i))
			succBytes[d] = append(succBytes[d], n.DepBytes[di])
		}
	}

	// Bulk-synchronous mode: tasks are grouped into dependence levels
	// separated by barriers. A task additionally waits for the previous
	// level's barrier, and cross-processor transfers are deferred to the
	// producing level's barrier — communication does not overlap compute,
	// which is precisely the constraint the task model relaxes.
	var level []int
	var levelRemaining []int
	type deferredXfer struct {
		producer, consumer int32
		bytes              int64
	}
	var deferred [][]deferredXfer
	var tasksAtLevel [][]int32
	if opt.barriers {
		level = make([]int, g.Len())
		maxLevel := 0
		for i, n := range g.Nodes {
			for _, d := range n.Deps {
				if level[d]+1 > level[i] {
					level[i] = level[d] + 1
				}
			}
			if level[i] > maxLevel {
				maxLevel = level[i]
			}
		}
		levelRemaining = make([]int, maxLevel+1)
		deferred = make([][]deferredXfer, maxLevel+1)
		tasksAtLevel = make([][]int32, maxLevel+1)
		for i := range g.Nodes {
			lv := level[i]
			levelRemaining[lv]++
			tasksAtLevel[lv] = append(tasksAtLevel[lv], int32(i))
			if lv > 0 {
				// The barrier release is one more pending arrival.
				st[i].pendingArrivals++
			}
		}
	}

	// Event heap: task finishes (kind 0) and data arrivals (kind 1),
	// processed in time order, ties by sequence for determinism.
	var heap eventHeap
	var seq int64
	push := func(t float64, task int32, kind int8) {
		seq++
		heap.push(simEvent{time: t, seq: seq, task: task, kind: kind})
	}

	// Per-proc ready queues and availability.
	readyQ := make([][]int32, nprocs)
	procFree := make([]float64, nprocs)
	procIdle := make([]bool, nprocs)
	for p := range procIdle {
		procIdle[p] = true
	}

	startTask := func(i int32, now float64) {
		n := &g.Nodes[i]
		proc := n.Proc % nprocs
		node := m.NodeOf(proc)
		var compute float64
		if n.Host {
			// Host-side future arithmetic: no kernel launch, no runtime
			// analysis — just the cost of waking the deferred value.
			compute = hostOpCost
		} else {
			overhead := opt.TaskOverhead
			if n.Traced {
				overhead = opt.TracedOverhead
			}
			compute = overhead + m.KernelLaunch + n.Cost*opt.slowdown(node)
		}
		fin := now + compute
		procFree[proc] = fin
		procIdle[proc] = false
		res.ProcBusy[proc] += compute
		res.NodeBusy[node] += compute
		res.BusyByName[n.Name] += compute
		if fin > res.Makespan {
			res.Makespan = fin
		}
		if opt.RecordSpans {
			res.Spans[i] = obs.Span{
				ID: int64(i), Name: n.Name, Phase: n.Phase,
				Proc: proc, Worker: proc,
				Launch: st[i].ready, Start: now, End: fin,
			}
		}
		push(fin, i, 0)
	}

	enqueueReady := func(i int32, now float64) {
		proc := g.Nodes[i].Proc % nprocs
		if procIdle[proc] {
			startTask(i, now)
			return
		}
		readyQ[proc] = append(readyQ[proc], i)
	}

	// Seed: tasks with no dependences are ready at time 0.
	for i := range g.Nodes {
		if st[i].pendingArrivals == 0 {
			enqueueReady(int32(i), 0)
		}
	}

	deliver := func(consumer int32, now float64) {
		s := &st[consumer]
		if now > s.ready {
			s.ready = now
		}
		s.pendingArrivals--
		if s.pendingArrivals == 0 {
			enqueueReady(consumer, s.ready)
		}
	}

	// transfer moves bytes from producer p to consumer c starting no
	// earlier than reqTime, scheduling the data-arrival event.
	transfer := func(p, c int32, b int64, reqTime float64) {
		srcProc := g.Nodes[p].Proc % nprocs
		node := m.NodeOf(srcProc)
		dstNode := m.NodeOf(g.Nodes[c].Proc % nprocs)
		var arrive float64
		if dstNode == node {
			dur := float64(b) / m.IntraBandwidth
			start := maxf(reqTime, intraFree[node])
			intraFree[node] = start + dur
			arrive = start + dur + m.IntraLatency
			res.IntraBytes += b
		} else {
			// Two pipelined stages: the source's injection (send)
			// channel, then the destination's receive channel. Keeping
			// the reservations independent avoids artificial convoying
			// across node chains while still serializing each node's own
			// traffic.
			dur := float64(b) / m.NetBandwidth
			sStart := maxf(reqTime, sendFree[node])
			sendFree[node] = sStart + dur
			rStart := maxf(sStart, recvFree[dstNode])
			recvFree[dstNode] = rStart + dur
			arrive = rStart + dur + m.NetLatency
			res.CommBytes += b
		}
		push(arrive, c, 1)
	}

	for heap.len() > 0 {
		ev := heap.pop()
		now := ev.time
		switch ev.kind {
		case 0: // task finish
			i := ev.task
			n := &g.Nodes[i]
			proc := n.Proc % nprocs
			for si, c := range succs[i] {
				b := succBytes[i][si]
				dst := g.Nodes[c].Proc % nprocs
				if b == 0 || dst == proc {
					deliver(c, now)
					continue
				}
				if opt.barriers {
					// Defer the transfer to this level's barrier.
					deferred[level[i]] = append(deferred[level[i]],
						deferredXfer{producer: i, consumer: c, bytes: b})
					continue
				}
				transfer(i, c, b, now)
			}
			if opt.barriers {
				lv := level[i]
				levelRemaining[lv]--
				if levelRemaining[lv] == 0 {
					// Barrier: flush the level's communication and
					// release the next level's tasks.
					for _, dx := range deferred[lv] {
						transfer(dx.producer, dx.consumer, dx.bytes, now)
					}
					deferred[lv] = nil
					if lv+1 < len(tasksAtLevel) {
						for _, j := range tasksAtLevel[lv+1] {
							deliver(j, now)
						}
					}
				}
			}
			// The processor picks its next ready task (earliest ready,
			// then launch order).
			if q := readyQ[proc]; len(q) > 0 {
				best := 0
				for k := 1; k < len(q); k++ {
					if st[q[k]].ready < st[q[best]].ready ||
						(st[q[k]].ready == st[q[best]].ready && q[k] < q[best]) {
						best = k
					}
				}
				next := q[best]
				readyQ[proc] = append(q[:best], q[best+1:]...)
				startTask(next, maxf(now, st[next].ready))
			} else {
				procIdle[proc] = true
			}
		case 1: // data arrival
			deliver(ev.task, now)
		}
	}
	return res
}

// eventHeap is a small binary min-heap ordered by (time, seq).
type eventHeap struct {
	ev []simEvent
}

type simEvent struct {
	time float64
	seq  int64
	task int32
	kind int8
}

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) less(a, b simEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e simEvent) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.ev[i], h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventHeap) pop() simEvent {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.ev) && h.less(h.ev[l], h.ev[small]) {
			small = l
		}
		if r < len(h.ev) && h.less(h.ev[r], h.ev[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.ev[i], h.ev[small] = h.ev[small], h.ev[i]
		i = small
	}
	return top
}

// SimulateBSP schedules the same graph bulk-synchronously: tasks are
// grouped into dependence levels separated by barriers, every task waits
// for the previous level's barrier, and all communication is deferred to
// the producing level's barrier — no overlap of communication with
// compute and no slack between levels. This is the MPI execution model of
// the paper's baseline libraries and the "overlap off" ablation; because
// it only adds constraints to the same event-driven scheduler, the task
// schedule can never lose to it.
func SimulateBSP(g taskrt.Graph, m machine.Machine, opt Options) Result {
	opt.barriers = true
	return Simulate(g, m, opt)
}

// Validate checks a graph for simulator preconditions: dependences must
// point backwards (launch order is topological) and DepBytes must pair
// with Deps. It returns a descriptive error for the first violation.
func Validate(g taskrt.Graph) error {
	for i, n := range g.Nodes {
		if len(n.Deps) != len(n.DepBytes) {
			return fmt.Errorf("sim: node %d has %d deps but %d dep-byte entries",
				i, len(n.Deps), len(n.DepBytes))
		}
		for _, d := range n.Deps {
			if d < 0 || d >= int64(i) {
				return fmt.Errorf("sim: node %d depends on %d, not a predecessor", i, d)
			}
		}
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
