package kdrsolvers

// The benchmark harness regenerating every figure of the paper's
// evaluation (Section 6), plus the ablations DESIGN.md calls out and real
// (non-simulated) microbenchmarks of the computational substrates.
//
// Figure benchmarks report the simulated per-iteration time of the
// modeled 64-GPU cluster as the custom metric "sim-sec/iter"; the Go
// ns/op column measures the harness itself and is not the experiment.
// Run everything with:
//
//	go test -bench=. -benchmem
//
// and the paper-scale sweeps with cmd/fig8 -paper, cmd/fig9 -paper, and
// cmd/fig10.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"kdrsolvers/internal/assemble"

	"kdrsolvers/internal/baseline"
	"kdrsolvers/internal/core"
	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/figures"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sim"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

// benchWarmup/benchTimed keep each configuration fast; the simulator is
// deterministic, so short runs measure the same per-iteration cost as the
// paper's 20+200 protocol.
const (
	benchWarmup = 3
	benchTimed  = 6
)

// reportSim attaches the simulated measurement to the benchmark output.
func reportSim(b *testing.B, m figures.Measurement) {
	b.ReportMetric(m.SecondsPerIter, "sim-sec/iter")
	b.ReportMetric(m.CommBytesPerIter/1e6, "sim-MB/iter")
	b.ReportMetric(m.TasksPerIter, "tasks/iter")
}

// BenchmarkFig8 regenerates the Figure 8 grid: every (stencil, solver,
// library) cell at a representative large size, plus a size sweep for the
// 5-point/CG cell. PETSc is skipped for GMRES exactly as in the paper.
func BenchmarkFig8(b *testing.B) {
	m := machine.Lassen(16)
	const n = int64(1) << 26
	for _, st := range figures.Fig8Stencils {
		for _, sv := range figures.Fig8Solvers {
			b.Run(fmt.Sprintf("%s/%s/KDR", st, sv), func(b *testing.B) {
				var meas figures.Measurement
				for i := 0; i < b.N; i++ {
					meas = figures.KDRIterTime(m, st, n, sv, benchWarmup, benchTimed,
						figures.KDROptions{Tracing: true})
				}
				reportSim(b, meas)
			})
			if sv != "gmres" {
				b.Run(fmt.Sprintf("%s/%s/PETSc", st, sv), func(b *testing.B) {
					var meas figures.Measurement
					for i := 0; i < b.N; i++ {
						meas = figures.BaselineIterTime(baseline.PETSc(), m, st, n, sv,
							benchWarmup, benchTimed)
					}
					reportSim(b, meas)
				})
			}
			b.Run(fmt.Sprintf("%s/%s/Trilinos", st, sv), func(b *testing.B) {
				var meas figures.Measurement
				for i := 0; i < b.N; i++ {
					meas = figures.BaselineIterTime(baseline.Trilinos(), m, st, n, sv,
						benchWarmup, benchTimed)
				}
				reportSim(b, meas)
			})
		}
	}
}

// BenchmarkFig8Sizes sweeps problem size for the 5-point/CG subplot —
// the size axis of Figure 8.
func BenchmarkFig8Sizes(b *testing.B) {
	m := machine.Lassen(16)
	for e := 20; e <= 32; e += 4 {
		n := int64(1) << e
		for _, lib := range []string{"KDR", "PETSc", "Trilinos"} {
			b.Run(fmt.Sprintf("n=2^%d/%s", e, lib), func(b *testing.B) {
				var meas figures.Measurement
				for i := 0; i < b.N; i++ {
					switch lib {
					case "KDR":
						meas = figures.KDRIterTime(m, sparse.Stencil2D5, n, "cg",
							benchWarmup, benchTimed, figures.KDROptions{Tracing: true})
					case "PETSc":
						meas = figures.BaselineIterTime(baseline.PETSc(), m,
							sparse.Stencil2D5, n, "cg", benchWarmup, benchTimed)
					default:
						meas = figures.BaselineIterTime(baseline.Trilinos(), m,
							sparse.Stencil2D5, n, "cg", benchWarmup, benchTimed)
					}
				}
				reportSim(b, meas)
			})
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: single- versus multi-operator
// BiCGStab below and above the crossover.
func BenchmarkFig9(b *testing.B) {
	m := machine.Lassen(64)
	for _, e := range []int{10, 16} {
		n := int64(1) << uint(2*e)
		b.Run(fmt.Sprintf("grid=2^%dx2^%d/single", e, e), func(b *testing.B) {
			var meas figures.Measurement
			for i := 0; i < b.N; i++ {
				meas = figures.KDRIterTime(m, sparse.Stencil2D5, n, "bicgstab",
					benchWarmup, benchTimed, figures.KDROptions{Tracing: true})
			}
			reportSim(b, meas)
		})
		b.Run(fmt.Sprintf("grid=2^%dx2^%d/multi", e, e), func(b *testing.B) {
			var meas figures.Measurement
			for i := 0; i < b.N; i++ {
				meas = figures.MeasurePlanner(figures.SplitPlanner(m, e, m.NumProcs()),
					"bicgstab", benchWarmup, benchTimed, figures.KDROptions{Tracing: true})
			}
			reportSim(b, meas)
		})
	}
}

// BenchmarkFig10 regenerates Figure 10 at a reduced scale: total CG time
// under a stochastic background load with and without dynamic
// load-balancing. The full-scale run is cmd/fig10.
func BenchmarkFig10(b *testing.B) {
	cfg := figures.Fig10Config{
		GridExp: 12, Nodes: 8, Pieces: 16, Iters: 60,
		RebalanceEvery: 10, RandomizeEvery: 30, Beta: 300, Seed: 3,
	}
	b.Run("static-vs-dynamic", func(b *testing.B) {
		var r figures.Fig10Result
		for i := 0; i < b.N; i++ {
			r = figures.Fig10(cfg)
		}
		b.ReportMetric(r.StaticTotal, "sim-static-sec")
		b.ReportMetric(r.DynamicTotal, "sim-dynamic-sec")
		b.ReportMetric(100*r.Reduction, "reduction-%")
	})
}

// BenchmarkAblationTracing isolates the dynamic-trace memoization of
// Section 4.1: the same problem with and without trace replay.
func BenchmarkAblationTracing(b *testing.B) {
	m := machine.Lassen(16)
	n := int64(1) << 20
	for _, tr := range []bool{true, false} {
		name := "traced"
		if !tr {
			name = "untraced"
		}
		b.Run(name, func(b *testing.B) {
			var meas figures.Measurement
			for i := 0; i < b.N; i++ {
				meas = figures.KDRIterTime(m, sparse.Stencil2D5, n, "cg",
					benchWarmup, benchTimed, figures.KDROptions{Tracing: tr})
			}
			reportSim(b, meas)
		})
	}
}

// BenchmarkAblationOverlap replays the identical task graph under the
// overlapping and the bulk-synchronous scheduler — the P1 mechanism.
func BenchmarkAblationOverlap(b *testing.B) {
	m := machine.Lassen(16)
	n := int64(1) << 28
	for _, bsp := range []bool{false, true} {
		name := "task-overlap"
		if bsp {
			name = "bulk-synchronous"
		}
		b.Run(name, func(b *testing.B) {
			var meas figures.Measurement
			for i := 0; i < b.N; i++ {
				meas = figures.KDRIterTime(m, sparse.Stencil3D27, n, "cg",
					benchWarmup, benchTimed, figures.KDROptions{Tracing: true, BSP: bsp})
			}
			reportSim(b, meas)
		})
	}
}

// BenchmarkAblationPieces sweeps the canonical-partition granularity
// (the -vp flag of the artifact's BenchmarkStencil).
func BenchmarkAblationPieces(b *testing.B) {
	m := machine.Lassen(4)
	n := int64(1) << 22
	for _, vp := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("vp=%d", vp), func(b *testing.B) {
			var meas figures.Measurement
			for i := 0; i < b.N; i++ {
				meas = figures.KDRIterTime(m, sparse.Stencil2D5, n, "cg",
					benchWarmup, benchTimed, figures.KDROptions{Tracing: true, VP: vp})
			}
			reportSim(b, meas)
		})
	}
}

// BenchmarkSpMVFormats measures the real (not simulated) multiply-add
// kernels of every storage format on the same stencil matrix — the
// Figure 3 zoo exercised for actual throughput.
func BenchmarkSpMVFormats(b *testing.B) {
	// 64 x 64 keeps the Dense variant (n² entries) within reason.
	csr := sparse.Laplacian2D(64, 64)
	n := csr.Domain().Size()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) + 0.5
	}
	for _, f := range sparse.Formats {
		mat := sparse.Convert(csr, f)
		b.Run(f, func(b *testing.B) {
			b.SetBytes(mat.NNZ() * 16)
			for i := 0; i < b.N; i++ {
				mat.MultiplyAdd(y, x)
			}
		})
	}
	b.Run("MatrixFree", func(b *testing.B) {
		op := sparse.NewStencilOperator(sparse.Stencil2D5, index.NewGrid(64, 64))
		b.SetBytes(op.NNZ() * 16)
		for i := 0; i < b.N; i++ {
			op.MultiplyAdd(y, x)
		}
	})
}

// BenchmarkProjections measures the dependent-partitioning operators on a
// paper-scale matrix-free stencil: the cost of deriving the kernel and
// halo partitions from a range partition.
func BenchmarkProjections(b *testing.B) {
	op := sparse.NewStencilOperator(sparse.Stencil2D5, index.NewGrid(1<<14, 1<<14))
	part := index.EqualPartition(op.Range(), 64)
	b.Run("RowRToK+ColKToD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kp := dpart.RowRToK(op.RowRelation(), part)
			_ = dpart.ColKToD(op.ColRelation(), kp)
		}
	})
	csr := sparse.Laplacian2D(512, 512)
	cpart := index.EqualPartition(csr.Range(), 16)
	b.Run("CSR/MatVecInput", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = dpart.MatVecInputPartition(csr.RowRelation(), csr.ColRelation(), cpart)
		}
	})
}

// BenchmarkRuntimeLaunch measures the real task runtime: launch + analysis
// + scheduling throughput for a CG-shaped dependence pattern, with the
// dependence analysis run in full every iteration ("replay=off") and
// memoized by trace replay ("replay=on"). The replay=on case warms the
// trace through record and calibrate before the timer starts, so the
// timed region is pure steady-state splicing.
func BenchmarkRuntimeLaunch(b *testing.B) {
	m := machine.Lassen(1)
	a := sparse.Laplacian2D(64, 64)
	n := a.Domain().Size()
	for _, tracing := range []bool{false, true} {
		name := "cg-step-real/replay=off"
		if tracing {
			name = "cg-step-real/replay=on"
		}
		b.Run(name, func(b *testing.B) {
			p := core.NewPlanner(core.Config{Machine: m})
			si := p.AddSolVector(make([]float64, n), index.EqualPartition(index.NewSpace("D", n), 4))
			ri := p.AddRHSVector(make([]float64, n), index.EqualPartition(index.NewSpace("R", n), 4))
			p.AddOperator(a, si, ri)
			p.Finalize()
			p.SetTracing(tracing)
			s := solvers.NewCG(p)
			for i := 0; i < 3; i++ {
				s.Step() // warm: record, calibrate, first replay
			}
			p.Drain()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			p.Drain()
		})
	}
}

// BenchmarkSimulator measures discrete-event simulation throughput on a
// realistic solver graph.
func BenchmarkSimulator(b *testing.B) {
	m := machine.Lassen(16)
	p := core.NewPlanner(core.Config{Machine: m, Virtual: true})
	n := int64(1) << 24
	op := sparse.NewStencilOperator(sparse.Stencil2D5, sparse.Stencil2D5.GridFor(n))
	si := p.AddSolVectorVirtual(n, index.EqualPartition(index.NewSpace("D", n), 64))
	ri := p.AddRHSVectorVirtual(n, index.EqualPartition(index.NewSpace("R", n), 64))
	p.AddOperator(op, si, ri)
	p.Finalize()
	s := solvers.NewCG(p)
	solvers.RunIterations(s, 10)
	p.Drain()
	g := p.Runtime().Graph()
	opts := sim.Options{TaskOverhead: figures.KDRTaskOverhead, TracedOverhead: figures.KDRTracedOverhead}
	b.Run(fmt.Sprintf("tasks=%d", g.Len()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sim.Simulate(g, m, opts)
		}
	})
}

// BenchmarkAssembly measures the concurrent matrix builder: raw
// contribution throughput and the merge into CSR.
func BenchmarkAssembly(b *testing.B) {
	const n = 128
	b.Run("add-and-finish", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bd := assemble.NewBuilder(n*n, n*n, 8)
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				w := w
				go func() {
					defer wg.Done()
					for r := int64(w); r < n*n; r += 8 {
						bd.Add(r, r, 4)
						if r+1 < n*n {
							bd.Add(r, r+1, -1)
						}
					}
				}()
			}
			wg.Wait()
			_ = bd.Finish()
		}
	})
}

// BenchmarkMatrixMarket measures the I/O round trip for a mid-size
// stencil matrix.
func BenchmarkMatrixMarket(b *testing.B) {
	a := sparse.Laplacian2D(128, 128)
	var buf bytes.Buffer
	if err := sparse.WriteMatrixMarket(&buf, a); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := sparse.WriteMatrixMarket(&w, a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := sparse.ReadMatrixMarket(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
