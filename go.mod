module kdrsolvers

go 1.22
