// Mixedformat: the paper's Section 7 closing observation — "multi-operator
// systems allow KDRSolvers to process pieces of a matrix stored in
// multiple formats within a single linear system". Here one Poisson
// operator is split by local structure: the regular stencil interior runs
// matrix-free (zero storage), while an irregular "defect" correction —
// a few strengthened couplings a real application might get from local
// mesh refinement — is stored in COO. One CG solve consumes both.
package main

import (
	"fmt"
	"math"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

func main() {
	const nx, ny = 24, 24
	grid := index.NewGrid(nx, ny)
	n := grid.Size()

	// Component 1: the regular interior as a matrix-free stencil.
	stencil := sparse.NewStencilOperator(sparse.Stencil2D5, grid)

	// Component 2: a sparse defect — SPD-preserving diagonal
	// strengthening at a few "refined" cells, stored in COO.
	var defect []sparse.Coord
	for i := int64(0); i < n; i += 37 {
		defect = append(defect, sparse.Coord{Row: i, Col: i, Val: 1.5})
	}
	correction := sparse.COOFromCoords(n, n, defect)

	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) / 11)
	}
	x := make([]float64, n)

	p := core.NewPlanner(core.Config{Machine: machine.Lassen(2)})
	si := p.AddSolVector(x, index.EqualPartition(index.NewSpace("D", n), 6))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", n), 6))
	p.AddOperator(stencil, si, ri)    // matrix-free
	p.AddOperator(correction, si, ri) // stored COO, same component pair
	p.Finalize()

	res := solvers.Solve(solvers.NewCG(p), 1e-10, 2000)
	p.Drain()

	// Verify against the explicitly assembled operator.
	assembled := sparse.Add(sparse.Laplacian2D(nx, ny),
		sparse.CSRFromCoords(n, n, defect))
	y := make([]float64, n)
	sparse.SpMV(assembled, y, x)
	var r2 float64
	for i := range y {
		d := y[i] - b[i]
		r2 += d * d
	}
	fmt.Printf("mixed-format CG: converged=%v in %d iterations\n", res.Converged, res.Iterations)
	fmt.Printf("formats in one operator: %s + %s\n", stencil.Format(), correction.Format())
	fmt.Printf("residual vs assembled reference: %.3g\n", math.Sqrt(r2))
	if !res.Converged || math.Sqrt(r2) > 1e-8 {
		panic("mixedformat: solve failed")
	}
	fmt.Println("ok: one logical matrix, two storage formats, zero reassembly")
}
