// Fem: the end-to-end workflow the paper's introduction motivates — a
// finite-element application assembles its stiffness matrix and load
// vector concurrently, element by element, then hands everything to the
// solver framework in place. P1 triangles on a structured triangulation
// of the unit square are assembled from per-element 3 × 3 stiffness
// matrices (whose sum is exactly the 5-point stencil), and the resulting
// Poisson problem is solved with Jacobi-preconditioned CG.
package main

import (
	"fmt"
	"math"
	"sync"

	"kdrsolvers/internal/assemble"
	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/precond"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

func main() {
	// (nx+1) x (ny+1) cells; interior nodes carry unknowns.
	const nx, ny = 48, 48
	n := int64(nx * ny)
	h := 1.0 / float64(nx+1)

	idx := func(i, j int) int64 { return int64(i*ny + j) }
	inside := func(i, j int) bool { return i >= 0 && i < nx && j >= 0 && j < ny }

	// The P1 element stiffness matrix for a right triangle with legs h is
	// independent of h in 2D: ½·[[2,-1,-1],[-1,1,0],[-1,0,1]] with the
	// right angle at vertex 0.
	elem := [3][3]float64{{1, -0.5, -0.5}, {-0.5, 0.5, 0}, {-0.5, 0, 0.5}}

	// Assemble concurrently: one goroutine per mesh row, two triangles
	// per cell. Nodes on the boundary are eliminated (Dirichlet), so
	// contributions involving them are dropped.
	mat := assemble.NewBuilder(n, n, 8)
	load := assemble.NewVectorBuilder(n)
	// Manufactured solution u = x(1−x)·y(1−y) (not a discrete
	// eigenfunction, so the solver does real work): f = −Δu.
	f := func(x, y float64) float64 {
		return 2 * (y*(1-y) + x*(1-x))
	}
	var wg sync.WaitGroup
	for ci := -1; ci < nx; ci++ {
		wg.Add(1)
		ci := ci
		go func() {
			defer wg.Done()
			for cj := -1; cj < ny; cj++ {
				// Cell corners in node coordinates (boundary nodes are the
				// virtual indices outside [0,n)).
				corners := [4][2]int{{ci, cj}, {ci + 1, cj}, {ci, cj + 1}, {ci + 1, cj + 1}}
				// Two triangles: (0,1,2) right angle at corner 0, and
				// (3,2,1) right angle at corner 3.
				for _, tri := range [2][3]int{{0, 1, 2}, {3, 2, 1}} {
					var batch []sparse.Coord
					for a := 0; a < 3; a++ {
						va := corners[tri[a]]
						if !inside(va[0], va[1]) {
							continue
						}
						ra := idx(va[0], va[1])
						for b := 0; b < 3; b++ {
							vb := corners[tri[b]]
							if !inside(vb[0], vb[1]) {
								continue
							}
							if v := elem[a][b]; v != 0 {
								batch = append(batch, sparse.Coord{Row: ra, Col: idx(vb[0], vb[1]), Val: v})
							}
						}
						// Lumped load: ∫f·φ ≈ f(node)·(element area)/3.
						x, y := float64(va[0]+1)*h, float64(va[1]+1)*h
						load.Add(ra, f(x, y)*h*h/6)
					}
					if len(batch) > 0 {
						mat.AddBatch(batch)
					}
				}
			}
		}()
	}
	wg.Wait()
	a := mat.Finish()
	b := load.Finish()
	fmt.Printf("assembled %d x %d stiffness matrix: %d nonzeros from %d cells\n",
		n, n, a.NNZ(), (nx+1)*(ny+1))

	// The summed P1 element matrices on this mesh ARE the 5-point stencil.
	ref := sparse.Laplacian2D(nx, ny)
	da, dr := sparse.ToDense(a), sparse.ToDense(ref)
	for i := range da {
		if math.Abs(da[i]-dr[i]) > 1e-12 {
			panic("fem: assembled matrix does not match the 5-point stencil")
		}
	}

	// Solve with Jacobi-preconditioned CG.
	x := make([]float64, n)
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(2)})
	si := p.AddSolVector(x, index.EqualPartition(index.NewSpace("D", n), 8))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", n), 8))
	p.AddOperator(a, si, ri)
	p.AddPreconditioner(precond.Jacobi(a), si, ri)
	p.Finalize()
	res := solvers.Solve(solvers.NewPCG(p), 1e-10, 2000)
	p.Drain()

	var maxErr float64
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			xx, yy := float64(i+1)*h, float64(j+1)*h
			exact := xx * (1 - xx) * yy * (1 - yy)
			if e := math.Abs(x[idx(i, j)] - exact); e > maxErr {
				maxErr = e
			}
		}
	}
	fmt.Printf("PCG converged=%v in %d iterations\n", res.Converged, res.Iterations)
	fmt.Printf("max error vs exact solution: %.3g (O(h²) = %.3g)\n", maxErr, h*h)
	if !res.Converged || maxErr > 2*h*h {
		panic("fem: solve failed")
	}
	fmt.Println("ok: concurrent element assembly straight into the solver")
}
