// Relatedsystems: the paper's Section 4.2 "related systems" pattern —
// solve (A₀ + ΔA_k)·x_k = b_k for a family of small perturbations ΔA_k of
// one base matrix. The multi-operator system stores A₀ once and adds each
// sparse perturbation as its own quadruple on the same component pair:
//
//	{(K₀, A₀, k, k), (K_k, ΔA_k, k, k)}  for k = 1 … n
package main

import (
	"fmt"
	"math"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

func main() {
	const nSystems = 3
	const n = int64(300)
	base := sparse.Laplacian1D(n) // A₀, stored once

	// Each perturbation strengthens a few diagonal entries — e.g. local
	// material changes in a family of related simulations.
	deltas := make([]*sparse.CSR, nSystems)
	for k := range deltas {
		var coords []sparse.Coord
		for t := int64(0); t < 5; t++ {
			i := (int64(k)*37 + t*53) % n
			coords = append(coords, sparse.Coord{Row: i, Col: i, Val: 0.5 + float64(k)})
		}
		deltas[k] = sparse.CSRFromCoords(n, n, coords)
	}

	bs := make([][]float64, nSystems)
	xs := make([][]float64, nSystems)
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(2)})
	for k := 0; k < nSystems; k++ {
		bs[k] = make([]float64, n)
		for i := range bs[k] {
			bs[k][i] = 1 + math.Cos(float64(i)/9+float64(k))
		}
		xs[k] = make([]float64, n)
		si := p.AddSolVector(xs[k], index.EqualPartition(index.NewSpace("D", n), 2))
		ri := p.AddRHSVector(bs[k], index.EqualPartition(index.NewSpace("R", n), 2))
		p.AddOperator(base, si, ri)      // shared A₀
		p.AddOperator(deltas[k], si, ri) // per-system ΔA_k, summed implicitly
	}
	p.Finalize()
	res := solvers.Solve(solvers.NewCG(p), 1e-10, 4000)
	p.Drain()

	// Verify against explicitly assembled A₀ + ΔA_k.
	worst := 0.0
	y := make([]float64, n)
	for k := 0; k < nSystems; k++ {
		ak := sparse.Add(base, deltas[k])
		sparse.SpMV(ak, y, xs[k])
		var r2 float64
		for i := range y {
			d := y[i] - bs[k][i]
			r2 += d * d
		}
		r := math.Sqrt(r2)
		fmt.Printf("system %d: ‖(A₀+ΔA)x−b‖ = %.3g\n", k, r)
		if r > worst {
			worst = r
		}
	}
	fmt.Printf("solved %d related systems in %d joint iterations; A₀ stored once\n",
		nSystems, res.Iterations)
	if !res.Converged || worst > 1e-8 {
		panic("relatedsystems: solve failed")
	}
	fmt.Println("ok")
}
