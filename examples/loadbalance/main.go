// Loadbalance: a laptop-scale run of the paper's Section 6.3 experiment —
// CG on a multi-operator tile decomposition while a stochastic background
// load occupies a random number of cores on every node, comparing a static
// tile mapping against the thermodynamic dynamic balancer.
package main

import (
	"fmt"

	"kdrsolvers/internal/figures"
)

func main() {
	cfg := figures.Fig10Config{
		GridExp: 12, Nodes: 8, Pieces: 16, Iters: 150,
		RebalanceEvery: 10, RandomizeEvery: 50, Beta: 300, Seed: 7,
	}
	r := figures.Fig10(cfg)

	// A compact trace: one line per rebalancing period.
	fmt.Println("iters      static(s)  dynamic(s)")
	for lo := 0; lo < cfg.Iters; lo += cfg.RebalanceEvery {
		hi := lo + cfg.RebalanceEvery
		var s, d float64
		for i := lo; i < hi; i++ {
			s += r.StaticIterTimes[i]
			d += r.DynamicIterTimes[i]
		}
		fmt.Printf("%4d-%-4d  %9.4f  %9.4f\n", lo, hi-1, s, d)
	}
	fmt.Printf("\ntotals: static %.3f s, dynamic %.3f s -> %.1f%% reduction (%d tile moves)\n",
		r.StaticTotal, r.DynamicTotal, 100*r.Reduction, r.Moves)
	if r.Reduction <= 0 {
		panic("loadbalance: dynamic mapping did not help")
	}
	fmt.Println("ok")
}
