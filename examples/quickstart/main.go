// Quickstart: assemble a 2D Poisson problem, hand the vectors to the
// planner in place, and solve it with CG — the paper's Figure 7 workflow.
package main

import (
	"fmt"
	"math"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

func main() {
	// Poisson's equation -Δu = f on a 64 x 64 interior grid with
	// homogeneous Dirichlet boundaries, discretized by the 5-point
	// stencil. We manufacture the solution u(x,y) = sin(πx)sin(πy) and
	// build the matching right-hand side.
	const nx, ny = 64, 64
	n := int64(nx * ny)
	a := sparse.Laplacian2D(nx, ny)

	h := 1.0 / float64(nx+1)
	b := make([]float64, n)
	exact := make([]float64, n)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			x, y := float64(i+1)*h, float64(j+1)*h
			u := math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
			exact[i*ny+j] = u
			// -Δu = 2π² u; scale by h² for the unit-coefficient stencil.
			b[i*ny+j] = 2 * math.Pi * math.Pi * u * h * h
		}
	}

	// Set up the planner: the solution and right-hand-side vectors are
	// adopted in place (no copies into library data structures), each
	// split into 8 pieces distributed over a simulated 2-node machine.
	x := make([]float64, n)
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(2)})
	si := p.AddSolVector(x, index.EqualPartition(index.NewSpace("D", n), 8))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", n), 8))
	p.AddOperator(a, si, ri)
	p.Finalize()

	// Solve with CG to a tight tolerance.
	res := solvers.Solve(solvers.NewCG(p), 1e-10, 1000)
	p.Drain()

	var maxErr float64
	for i := range x {
		if e := math.Abs(x[i] - exact[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("CG converged=%v in %d iterations, residual %.3g\n",
		res.Converged, res.Iterations, res.Residual)
	fmt.Printf("max error vs manufactured solution: %.3g (discretization error O(h²) = %.3g)\n",
		maxErr, h*h)
	if !res.Converged || maxErr > 4*h*h {
		panic("quickstart: solve failed")
	}
	fmt.Println("ok")
}
