// Multirhs: the paper's Section 4.2 "multiple right-hand sides" pattern —
// solve A·x_k = b_k for several right-hand sides at once by building the
// multi-operator system {(K, A, 1, 1), …, (K, A, n, n)} in which every
// quadruple aliases the same physical matrix. Nothing is duplicated: one
// CSR object backs all the diagonal blocks.
package main

import (
	"fmt"
	"math"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

func main() {
	const nSystems = 3
	const n = int64(400)
	a := sparse.Laplacian1D(n) // one stored matrix, aliased into every block

	// Distinct right-hand sides.
	bs := make([][]float64, nSystems)
	for k := range bs {
		bs[k] = make([]float64, n)
		for i := range bs[k] {
			bs[k][i] = math.Sin(float64(k+1) * float64(i) / 50)
		}
	}

	xs := make([][]float64, nSystems)
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(2)})
	for k := 0; k < nSystems; k++ {
		xs[k] = make([]float64, n)
		si := p.AddSolVector(xs[k], index.EqualPartition(index.NewSpace("D", n), 2))
		ri := p.AddRHSVector(bs[k], index.EqualPartition(index.NewSpace("R", n), 2))
		p.AddOperator(a, si, ri) // the same a every time: aliasing, not copying
	}
	p.Finalize()
	res := solvers.Solve(solvers.NewCG(p), 1e-10, 4000)
	p.Drain()

	// Verify each system independently: ‖A x_k − b_k‖ small.
	worst := 0.0
	y := make([]float64, n)
	for k := 0; k < nSystems; k++ {
		sparse.SpMV(a, y, xs[k])
		var r2 float64
		for i := range y {
			d := y[i] - bs[k][i]
			r2 += d * d
		}
		r := math.Sqrt(r2)
		fmt.Printf("system %d: ‖Ax−b‖ = %.3g\n", k, r)
		if r > worst {
			worst = r
		}
	}
	fmt.Printf("solved %d systems in %d joint CG iterations with one stored matrix\n",
		nSystems, res.Iterations)
	if !res.Converged || worst > 1e-8 {
		panic("multirhs: solve failed")
	}

	// The sequential alternative: when the right-hand sides arrive one at
	// a time (a time-stepping loop, a parameter sweep), GCRO-DR carries
	// its deflation subspace from solve to solve through a RecycleCache
	// keyed by operator identity — later solves skip re-discovering the
	// slow eigenspace the first one paid for. (A 2D Laplacian of the same
	// size here: the 1D chain's spectrum stagnates any short-restart
	// GMRES, recycled or not.)
	a2 := sparse.Laplacian2D(20, 20) // one object: one cache key across solves
	cache := solvers.NewRecycleCache()
	iters := make([]int, nSystems)
	for k := 0; k < nSystems; k++ {
		x := make([]float64, n)
		pk := core.NewPlanner(core.Config{Machine: machine.Lassen(2)})
		si := pk.AddSolVector(x, index.EqualPartition(index.NewSpace("D", n), 2))
		ri := pk.AddRHSVector(bs[k], index.EqualPartition(index.NewSpace("R", n), 2))
		pk.AddOperator(a2, si, ri)
		pk.Finalize()
		s := solvers.NewGCRODR(pk, 10, 4, cache)
		rk := solvers.Solve(s, 1e-8, 4000)
		pk.Drain()
		if !rk.Converged {
			panic("multirhs: recycled solve failed")
		}
		s.SaveRecycleSpace()
		iters[k] = rk.Iterations
		fmt.Printf("recycled solve %d: %d GCRO-DR iterations (true residual %.3g)\n",
			k, rk.Iterations, rk.TrueResidual)
	}
	if iters[nSystems-1] > iters[0] {
		panic("multirhs: recycling made later solves slower")
	}
	fmt.Println("ok")
}
