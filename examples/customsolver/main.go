// Customsolver: the paper's Section 5 promise that "LegionSolvers also
// exposes all necessary facilities for users to implement their own
// solvers". A steepest-descent solver is written here, in application
// code, against nothing but the planner's Figure 6 operations — the same
// ~20 lines of mathematics the paper's Figure 7 shows for CG. It plugs
// into the library's Solve driver unchanged.
package main

import (
	"fmt"
	"math"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

// SteepestDescent minimizes ½xᵀAx − bᵀx along the residual direction:
// α = rᵀr / rᵀAr each step. It satisfies solvers.Solver, so the stock
// driver, convergence checks, and benchmarks all apply to it.
type SteepestDescent struct {
	p    *core.Planner
	r, q core.VecID
	res  *core.Scalar
}

// NewSteepestDescent builds the solver on a finalized square system —
// exactly the constructor shape of the library's own solvers.
func NewSteepestDescent(p *core.Planner) *SteepestDescent {
	if !p.IsSquare() {
		panic("steepest descent requires a square system")
	}
	s := &SteepestDescent{
		p: p,
		r: p.AllocateWorkspace(core.RhsShape),
		q: p.AllocateWorkspace(core.RhsShape),
	}
	// r = b − Ax.
	p.Matmul(s.r, core.SOL)
	p.Scal(s.r, p.Constant(-1))
	p.Axpy(s.r, p.Constant(1), core.RHS)
	s.res = p.Dot(s.r, s.r)
	return s
}

// Name implements solvers.Solver.
func (s *SteepestDescent) Name() string { return "SteepestDescent (user-defined)" }

// ConvergenceMeasure implements solvers.Solver.
func (s *SteepestDescent) ConvergenceMeasure() *core.Scalar { return s.res }

// Step implements solvers.Solver: q = Ar; α = rᵀr/rᵀq; x += αr; r −= αq.
// Every coefficient is a deferred scalar — the step never blocks.
func (s *SteepestDescent) Step() {
	p := s.p
	p.Matmul(s.q, s.r)
	alpha := p.Div(s.res, p.Dot(s.r, s.q))
	p.Axpy(core.SOL, alpha, s.r)
	p.Axpy(s.r, p.Neg(alpha), s.q)
	s.res = p.Dot(s.r, s.r)
}

func main() {
	const n = int64(64)
	a := sparse.Laplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) / 9)
	}
	x := make([]float64, n)

	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(x, index.EqualPartition(index.NewSpace("D", n), 4))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", n), 4))
	p.AddOperator(a, si, ri)
	p.Finalize()

	var s solvers.Solver = NewSteepestDescent(p) // drop-in: same interface
	res := solvers.Solve(s, 1e-5, 50000)
	p.Drain()

	// Verify the residual independently.
	y := make([]float64, n)
	sparse.SpMV(a, y, x)
	var r2 float64
	for i := range y {
		d := y[i] - b[i]
		r2 += d * d
	}
	fmt.Printf("%s: converged=%v in %d iterations, ‖Ax−b‖ = %.3g\n",
		s.Name(), res.Converged, res.Iterations, math.Sqrt(r2))
	if !res.Converged || math.Sqrt(r2) > 1e-4 {
		panic("customsolver: solve failed")
	}
	fmt.Println("ok: a user-defined solver through the stock driver")
}
