// Customformat: the paper's P2 claim — a user-defined sparse matrix
// storage format, written entirely in application code, runs through the
// library's universal co-partitioning operators and solvers with no
// library changes. The format below ("JDS-lite", a jagged-diagonal-style
// layout with rows sorted by length) only has to expose its row and
// column relations; everything else (partition derivation, halo
// computation, dependence analysis, solving) is format-independent.
package main

import (
	"fmt"
	"math"
	"sort"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

// JDSLite stores rows in descending-length order, entries contiguous per
// permuted row. The kernel space is ordered by permuted row, so its row
// relation is an explicit function K → R through the permutation and its
// column relation an explicit col array — no structural assumption the
// library must know about.
type JDSLite struct {
	rows, cols int64
	perm       []int64 // permuted position -> original row
	ptr        []int64 // kernel interval per permuted row
	colIdx     []int64
	vals       []float64
	rowOfK     []int64 // original row of each kernel entry

	rowRel, colRel *dpart.FnRelation
}

// NewJDSLite converts a CSR matrix into the custom layout.
func NewJDSLite(a *sparse.CSR) *JDSLite {
	rows, cols := sparse.Dims(a)
	rp, ci, vs := a.RowPtr(), a.ColIdx(), a.Vals()
	perm := make([]int64, rows)
	for i := range perm {
		perm[i] = int64(i)
	}
	sort.Slice(perm, func(x, y int) bool {
		lx := rp[perm[x]+1] - rp[perm[x]]
		ly := rp[perm[y]+1] - rp[perm[y]]
		if lx != ly {
			return lx > ly
		}
		return perm[x] < perm[y]
	})
	j := &JDSLite{rows: rows, cols: cols, perm: perm, ptr: make([]int64, rows+1)}
	for p, orig := range perm {
		j.ptr[p] = int64(len(j.vals))
		for k := rp[orig]; k < rp[orig+1]; k++ {
			j.colIdx = append(j.colIdx, ci[k])
			j.vals = append(j.vals, vs[k])
			j.rowOfK = append(j.rowOfK, orig)
		}
		_ = p
	}
	j.ptr[rows] = int64(len(j.vals))
	j.rowRel = dpart.NewFnRelation("K", j.rowOfK, index.NewSpace("R", rows))
	j.colRel = dpart.NewFnRelation("K", j.colIdx, index.NewSpace("D", cols))
	return j
}

func (j *JDSLite) Domain() index.Space         { return j.colRel.Right() }
func (j *JDSLite) Range() index.Space          { return j.rowRel.Right() }
func (j *JDSLite) Kernel() index.Space         { return index.NewSpace("K", int64(len(j.vals))) }
func (j *JDSLite) RowRelation() dpart.Relation { return j.rowRel }
func (j *JDSLite) ColRelation() dpart.Relation { return j.colRel }
func (j *JDSLite) NNZ() int64                  { return int64(len(j.vals)) }
func (j *JDSLite) Format() string              { return "JDS-lite (user-defined)" }

func (j *JDSLite) MultiplyAdd(y, x []float64) {
	j.MultiplyAddPart(y, x, j.Kernel().Set)
}

func (j *JDSLite) MultiplyAddT(y, x []float64) {
	j.MultiplyAddTPart(y, x, j.Kernel().Set)
}

func (j *JDSLite) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			y[j.rowOfK[k]] += j.vals[k] * x[j.colIdx[k]]
		}
	})
}

func (j *JDSLite) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			y[j.colIdx[k]] += j.vals[k] * x[j.rowOfK[k]]
		}
	})
}

func main() {
	const nx, ny = 24, 24
	n := int64(nx * ny)
	custom := NewJDSLite(sparse.Laplacian2D(nx, ny))

	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) / 13)
	}
	x := make([]float64, n)

	// The planner neither knows nor cares that the format is user-defined:
	// the universal projections derive the kernel and halo partitions from
	// the relations the format exposes.
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(2)})
	si := p.AddSolVector(x, index.EqualPartition(index.NewSpace("D", n), 6))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", n), 6))
	p.AddOperator(custom, si, ri)
	p.Finalize()
	res := solvers.Solve(solvers.NewCG(p), 1e-10, 2000)
	p.Drain()

	// Check the residual against the reference CSR operator.
	ref := sparse.Laplacian2D(nx, ny)
	y := make([]float64, n)
	sparse.SpMV(ref, y, x)
	var r2 float64
	for i := range y {
		d := y[i] - b[i]
		r2 += d * d
	}
	fmt.Printf("format %q: CG converged=%v in %d iterations\n",
		custom.Format(), res.Converged, res.Iterations)
	fmt.Printf("residual checked against reference CSR: %.3g\n", math.Sqrt(r2))
	if !res.Converged || math.Sqrt(r2) > 1e-8 {
		panic("customformat: solve failed")
	}
	fmt.Println("ok: user-defined format solved with zero library modifications")
}
